#include "io/volume_set.h"

#include <algorithm>
#include <cstring>
#include <random>
#include <string>

#include "common/bytes.h"
#include "obs/metric_names.h"

namespace eos {

namespace {

// Member-local header layout (payload bytes of pages 0..kHeaderPages-1):
//   0  magic u32        "EVST"
//   4  version u32
//   8  set uuid u64
//  16  member count u16
//  18  member index u16
//  20  mirrored u8, 3 pad bytes
//  24  chunk pages u32
//  28  chunk count u32
//  32  entries, 12 bytes each:
//      primary u16, replica u16 (0xFFFF = none), primary block u32,
//      replica block u32
constexpr size_t kFixedHeaderBytes = 32;
constexpr size_t kEntryBytes = 12;

// A member is declared offline after this many consecutive I/O failures
// (an Unavailable is definitive and trips it immediately).
constexpr int kOfflineStreak = 3;
// Every Nth read of an offline member probes the device anyway, so a
// healed volume comes back without operator action.
constexpr uint64_t kProbeInterval = 64;

uint64_t FreshSetUuid() {
  std::random_device rd;
  return (uint64_t{rd()} << 32) ^ rd();
}

}  // namespace

// ---- repair scope ----------------------------------------------------------

namespace {
thread_local VolumeSetDevice* g_repair_set = nullptr;
}

VolumeRepairScope::VolumeRepairScope(VolumeSetDevice* set)
    : set_(set), prev_(g_repair_set) {
  if (set_ != nullptr) g_repair_set = set_;
}

VolumeRepairScope::~VolumeRepairScope() { g_repair_set = prev_; }

VolumeSetDevice* VolumeRepairScope::ActiveSet() { return g_repair_set; }

// ---- construction ----------------------------------------------------------

VolumeSetDevice::VolumeSetDevice(
    uint32_t payload_page_size, std::vector<std::unique_ptr<Member>> members,
    const VolumeSetOptions& options)
    : PageDevice(payload_page_size, 0),
      options_(options),
      members_(std::move(members)) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  m_failover_ = reg.counter(obs::kVolumeFailoverReads);
  m_repaired_ = reg.counter(obs::kVolumeRepairedPages);
  m_degraded_write_ = reg.counter(obs::kVolumeDegradedWrites);
  m_shed_ = reg.counter(obs::kVolumeShedPlacements);
  m_offline_ = reg.gauge(obs::kVolumeMembersOffline);
}

VolumeSetDevice::~VolumeSetDevice() {
  // Leave the process-wide offline gauge balanced across set lifetimes.
  for (auto& m : members_) {
    if (!m->online.load(std::memory_order_relaxed)) m_offline_->Add(-1);
  }
}

Status VolumeSetDevice::CheckMembers(
    const std::vector<std::unique_ptr<PageDevice>>& members,
    const VolumeSetOptions& options) {
  if (members.empty()) {
    return Status::InvalidArgument("volume set needs at least one member");
  }
  if (members.size() >= kNoReplica) {
    return Status::InvalidArgument("too many volume set members");
  }
  uint32_t page_size = members[0]->page_size();
  if (page_size <= 2 * VerifiedPageDevice::kTrailerBytes) {
    return Status::InvalidArgument("member page size too small for trailers");
  }
  for (const auto& m : members) {
    if (m == nullptr) {
      return Status::InvalidArgument("null volume set member");
    }
    if (m->page_size() != page_size) {
      return Status::InvalidArgument(
          "volume set members disagree on page size");
    }
  }
  if (options.mirrored && members.size() < 2) {
    return Status::InvalidArgument(
        "mirrored placement needs at least two members");
  }
  return Status::OK();
}

StatusOr<std::unique_ptr<VolumeSetDevice>> VolumeSetDevice::Format(
    std::vector<std::unique_ptr<PageDevice>> members,
    const VolumeSetOptions& options) {
  EOS_RETURN_IF_ERROR(CheckMembers(members, options));
  if (options.chunk_pages == 0) {
    return Status::InvalidArgument("chunk_pages must be set to format a set");
  }
  uint32_t payload = members[0]->page_size() - VerifiedPageDevice::kTrailerBytes;
  std::vector<std::unique_ptr<Member>> wrapped;
  for (auto& raw : members) {
    auto m = std::make_unique<Member>();
    m->raw = std::move(raw);
    m->verified = std::make_unique<VerifiedPageDevice>(
        m->raw.get(), options.format_epoch, options.io_retry);
    if (m->verified->page_count() < kHeaderPages) {
      EOS_RETURN_IF_ERROR(m->verified->Grow(kHeaderPages));
    }
    wrapped.push_back(std::move(m));
  }
  std::unique_ptr<VolumeSetDevice> set(
      new VolumeSetDevice(payload, std::move(wrapped), options));
  set->set_uuid_ = FreshSetUuid();
  // A fresh set must be able to stamp every member; partial formats are
  // refused rather than silently degraded.
  ExclusiveLatchGuard g(set->map_latch_);
  EOS_RETURN_IF_ERROR(set->PersistHeaders());
  for (const auto& m : set->members_) {
    if (!m->online.load(std::memory_order_relaxed)) {
      return Status::Unavailable("volume failed while formatting the set");
    }
  }
  return set;
}

Status VolumeSetDevice::ParseHeader(const uint8_t* buf, size_t len,
                                    uint64_t* uuid,
                                    std::vector<Chunk>* chunks) const {
  if (len < kFixedHeaderBytes) {
    return Status::Corruption("volume set header truncated");
  }
  if (DecodeU32(buf) != kHeaderMagic) {
    return Status::Corruption("not a volume set member (bad header magic)");
  }
  if (DecodeU32(buf + 4) != kHeaderVersion) {
    return Status::Corruption("unsupported volume set header version");
  }
  *uuid = DecodeU64(buf + 8);
  uint32_t count = DecodeU32(buf + 28);
  if (kFixedHeaderBytes + uint64_t{count} * kEntryBytes > len) {
    return Status::Corruption("volume set chunk table overruns header");
  }
  chunks->clear();
  chunks->reserve(count);
  for (uint32_t c = 0; c < count; ++c) {
    const uint8_t* e = buf + kFixedHeaderBytes + size_t{c} * kEntryBytes;
    Chunk chunk;
    chunk.primary = DecodeU16(e);
    chunk.replica = DecodeU16(e + 2);
    chunk.primary_block = DecodeU32(e + 4);
    chunk.replica_block = DecodeU32(e + 8);
    if (chunk.primary >= members_.size() ||
        (chunk.replica != kNoReplica && chunk.replica >= members_.size())) {
      return Status::Corruption("volume set chunk names a missing member");
    }
    chunks->push_back(chunk);
  }
  return Status::OK();
}

StatusOr<std::unique_ptr<VolumeSetDevice>> VolumeSetDevice::Open(
    std::vector<std::unique_ptr<PageDevice>> members,
    const VolumeSetOptions& options) {
  EOS_RETURN_IF_ERROR(CheckMembers(members, options));
  uint32_t payload = members[0]->page_size() - VerifiedPageDevice::kTrailerBytes;
  std::vector<std::unique_ptr<Member>> wrapped;
  for (auto& raw : members) {
    auto m = std::make_unique<Member>();
    m->raw = std::move(raw);
    m->verified = std::make_unique<VerifiedPageDevice>(
        m->raw.get(), options.format_epoch, options.io_retry);
    wrapped.push_back(std::move(m));
  }
  std::unique_ptr<VolumeSetDevice> set(
      new VolumeSetDevice(payload, std::move(wrapped), options));

  // Read every member's header; the longest readable chunk table is
  // authoritative (a member that missed the last placement flush simply
  // has a stale prefix). Members with unreadable headers start offline.
  bool have_any = false;
  uint64_t uuid = 0;
  uint32_t mirrored_and_chunk[2] = {0, 0};
  std::vector<Chunk> best;
  size_t header_bytes = size_t{kHeaderPages} * payload;
  std::vector<uint8_t> buf(header_bytes);
  for (size_t i = 0; i < set->members_.size(); ++i) {
    Member* m = set->members_[i].get();
    Status s = m->verified->page_count() >= kHeaderPages
                   ? m->verified->ReadPages(0, kHeaderPages, buf.data())
                   : Status::Corruption("member too small for a set header");
    uint64_t member_uuid = 0;
    std::vector<Chunk> chunks;
    if (s.ok()) s = set->ParseHeader(buf.data(), header_bytes, &member_uuid,
                                     &chunks);
    if (s.ok()) {
      uint16_t member_count = DecodeU16(buf.data() + 16);
      uint16_t member_index = DecodeU16(buf.data() + 18);
      if (member_count != set->members_.size()) {
        return Status::InvalidArgument(
            "volume set opened with wrong member count");
      }
      if (member_index != i) {
        return Status::InvalidArgument(
            "volume set members passed out of order");
      }
      if (have_any && member_uuid != uuid) {
        return Status::InvalidArgument(
            "volume set members belong to different sets");
      }
      uuid = member_uuid;
      mirrored_and_chunk[0] = buf[20];
      mirrored_and_chunk[1] = DecodeU32(buf.data() + 24);
      have_any = true;
      if (chunks.size() > best.size()) best = std::move(chunks);
    } else {
      m->online.store(false, std::memory_order_relaxed);
      m->fail_streak.store(kOfflineStreak, std::memory_order_relaxed);
      set->m_offline_->Add(1);
    }
  }
  if (!have_any) {
    return Status::Unavailable(
        "no volume set member has a readable header");
  }
  // The persisted geometry wins over whatever the caller guessed.
  const_cast<VolumeSetOptions&>(set->options_).mirrored =
      mirrored_and_chunk[0] != 0;
  const_cast<VolumeSetOptions&>(set->options_).chunk_pages =
      mirrored_and_chunk[1];
  if (set->options_.chunk_pages == 0) {
    return Status::Corruption("volume set header has zero chunk size");
  }
  set->set_uuid_ = uuid;
  set->chunks_ = std::move(best);
  for (const Chunk& c : set->chunks_) {
    Member* p = set->members_[c.primary].get();
    p->next_block = std::max(p->next_block, uint64_t{c.primary_block} + 1);
    p->primary_blocks++;
    if (c.replica != kNoReplica) {
      Member* r = set->members_[c.replica].get();
      r->next_block = std::max(r->next_block, uint64_t{c.replica_block} + 1);
    }
  }
  set->SetPageCount(set->logical_pages_for_chunks(set->chunks_.size()));
  return set;
}

// ---- placement -------------------------------------------------------------

bool VolumeSetDevice::HasRoomForBlock(int m) const {
  if (options_.member_capacity_pages == 0) return true;
  uint64_t used = kHeaderPages +
                  (members_[m]->next_block + 1) * uint64_t{options_.chunk_pages};
  return used <= options_.member_capacity_pages;
}

void VolumeSetDevice::MarkShedding(int m, const char* why) {
  (void)why;
  if (!members_[m]->shedding.exchange(true, std::memory_order_relaxed)) {
    shed_placements_.fetch_add(1, std::memory_order_relaxed);
    m_shed_->Inc();
  }
}

int VolumeSetDevice::PickMember(int exclude, bool allow_shedding,
                                bool for_primary, uint64_t salt,
                                const std::vector<bool>& tried) const {
  int best = -1;
  uint64_t best_load = 0;
  uint64_t best_primaries = 0;
  size_t n = members_.size();
  for (size_t k = 0; k < n; ++k) {
    // Rotating scan order: equal loads stripe round-robin by chunk.
    int i = static_cast<int>((salt + k) % n);
    const Member* m = members_[i].get();
    if (i == exclude || tried[i]) continue;
    if (!m->online.load(std::memory_order_relaxed)) continue;
    if (!allow_shedding && m->shedding.load(std::memory_order_relaxed)) {
      continue;
    }
    if (!HasRoomForBlock(i)) continue;
    // Least-loaded wins; a load tie for a primary goes to the member
    // serving the fewest primaries so read traffic stripes evenly too.
    bool better =
        best < 0 || m->next_block < best_load ||
        (for_primary && m->next_block == best_load &&
         m->primary_blocks < best_primaries);
    if (better) {
      best = i;
      best_load = m->next_block;
      best_primaries = m->primary_blocks;
    }
  }
  return best;
}

void VolumeSetDevice::MaybeShedAfterPlacement(int m) {
  if (options_.member_capacity_pages == 0 ||
      options_.shed_watermark_pages == 0) {
    return;
  }
  uint64_t used =
      kHeaderPages + members_[m]->next_block * uint64_t{options_.chunk_pages};
  uint64_t remaining = options_.member_capacity_pages > used
                           ? options_.member_capacity_pages - used
                           : 0;
  if (remaining < options_.shed_watermark_pages) {
    MarkShedding(m, "capacity watermark");
  }
}

Status VolumeSetDevice::EnsureBlock(int m, uint64_t block) {
  Member* member = members_[m].get();
  uint64_t need = kHeaderPages + (block + 1) * uint64_t{options_.chunk_pages};
  if (member->verified->page_count() >= need) return Status::OK();
  Status s = member->verified->Grow(need);
  if (s.IsNoSpace()) MarkShedding(m, "device full");
  if (!s.ok()) NoteMemberFailure(m, s);
  return s;
}

Status VolumeSetDevice::Grow(uint64_t new_page_count) {
  if (new_page_count <= page_count()) return Status::OK();
  uint64_t need_chunks =
      new_page_count <= 1
          ? new_page_count
          : 1 + (new_page_count - 2) / options_.chunk_pages + 1;
  ExclusiveLatchGuard g(map_latch_);
  // Refuse up front if the chunk table cannot index that many chunks; a
  // placement the header cannot record must never be exposed to callers.
  const size_t max_chunks =
      (size_t{kHeaderPages} * page_size_ - kFixedHeaderBytes) / kEntryBytes;
  if (need_chunks > max_chunks) {
    return Status::NoSpace("volume set chunk table is full (" +
                           std::to_string(max_chunks) + " chunks)");
  }
  const size_t placed_from = chunks_.size();
  bool placed_any = false;
  Status failure;
  while (chunks_.size() < need_chunks) {
    uint64_t c = chunks_.size();
    Chunk chunk;
    int primary = -1;
    // A member whose grow failed for this chunk is out of the running —
    // both passes — or a permanently full member would be re-picked
    // forever once shedding members are allowed back in.
    std::vector<bool> tried(members_.size(), false);
    // Two passes: prefer members that are not shedding, fall back to
    // shedding (but not offline/full) ones before giving up.
    for (int pass = 0; pass < 2 && primary < 0; ++pass) {
      for (;;) {
        int m = PickMember(-1, /*allow_shedding=*/pass == 1,
                           /*for_primary=*/true, c, tried);
        if (m < 0) break;
        Status s = EnsureBlock(m, members_[m]->next_block);
        if (s.ok()) {
          primary = m;
          break;
        }
        tried[m] = true;
        failure = s;
      }
    }
    if (primary < 0) {
      if (failure.ok()) {
        failure = Status::NoSpace("no volume can take another chunk");
      }
      break;
    }
    chunk.primary = static_cast<uint16_t>(primary);
    chunk.primary_block =
        static_cast<uint32_t>(members_[primary]->next_block++);
    members_[primary]->primary_blocks++;
    MaybeShedAfterPlacement(primary);
    if (options_.mirrored) {
      int replica = -1;
      std::fill(tried.begin(), tried.end(), false);
      for (int pass = 0; pass < 2 && replica < 0; ++pass) {
        for (;;) {
          int m = PickMember(primary, /*allow_shedding=*/pass == 1,
                             /*for_primary=*/false, c + 1, tried);
          if (m < 0) break;
          Status s = EnsureBlock(m, members_[m]->next_block);
          if (s.ok()) {
            replica = m;
            break;
          }
          tried[m] = true;
          failure = s;
        }
      }
      if (replica < 0) {
        // Mirrored mode refuses to place a chunk with a single copy:
        // degrade writes, never redundancy.
        members_[primary]->next_block--;
        members_[primary]->primary_blocks--;
        if (failure.ok()) {
          failure = Status::NoSpace(
              "mirrored placement needs a second live volume");
        }
        break;
      }
      chunk.replica = static_cast<uint16_t>(replica);
      chunk.replica_block =
          static_cast<uint32_t>(members_[replica]->next_block++);
      MaybeShedAfterPlacement(replica);
    }
    chunks_.push_back(chunk);
    placed_any = true;
  }
  if (placed_any) {
    Status hs = PersistHeaders();
    if (!hs.ok()) {
      // A placement no member recorded must not be exposed: readers would
      // rely on chunks a reopen cannot see. Unwind to the persisted state
      // so chunks_ and page_count() never diverge.
      while (chunks_.size() > placed_from) {
        const Chunk& c = chunks_.back();
        members_[c.primary]->next_block--;
        members_[c.primary]->primary_blocks--;
        if (c.replica != kNoReplica) members_[c.replica]->next_block--;
        chunks_.pop_back();
      }
      return hs;
    }
    SetPageCount(logical_pages_for_chunks(chunks_.size()));
  }
  if (chunks_.size() < need_chunks) {
    return failure.ok()
               ? Status::NoSpace("no volume can take another chunk")
               : failure;
  }
  return Status::OK();
}

Status VolumeSetDevice::PersistHeaders() {
  size_t header_bytes = size_t{kHeaderPages} * page_size_;
  if (kFixedHeaderBytes + chunks_.size() * kEntryBytes > header_bytes) {
    return Status::NoSpace(
        "volume set chunk table exceeds the member header capacity");
  }
  std::vector<uint8_t> buf(header_bytes, 0);
  EncodeU32(buf.data(), kHeaderMagic);
  EncodeU32(buf.data() + 4, kHeaderVersion);
  EncodeU64(buf.data() + 8, set_uuid_);
  EncodeU16(buf.data() + 16, static_cast<uint16_t>(members_.size()));
  buf[20] = options_.mirrored ? 1 : 0;
  EncodeU32(buf.data() + 24, options_.chunk_pages);
  EncodeU32(buf.data() + 28, static_cast<uint32_t>(chunks_.size()));
  for (size_t c = 0; c < chunks_.size(); ++c) {
    uint8_t* e = buf.data() + kFixedHeaderBytes + c * kEntryBytes;
    EncodeU16(e, chunks_[c].primary);
    EncodeU16(e + 2, chunks_[c].replica);
    EncodeU32(e + 4, chunks_[c].primary_block);
    EncodeU32(e + 8, chunks_[c].replica_block);
  }
  size_t stamped = 0;
  Status first_failure;
  for (size_t i = 0; i < members_.size(); ++i) {
    Member* m = members_[i].get();
    if (!m->online.load(std::memory_order_relaxed)) continue;
    EncodeU16(buf.data() + 18, static_cast<uint16_t>(i));
    Status s = m->verified->WritePages(0, kHeaderPages, buf.data());
    if (s.ok()) {
      ++stamped;
    } else {
      NoteMemberFailure(static_cast<int>(i), s);
      if (first_failure.ok()) first_failure = s;
    }
  }
  if (stamped == 0) {
    return first_failure.ok()
               ? Status::Unavailable("no volume accepted the placement table")
               : first_failure;
  }
  return Status::OK();
}

// ---- member health bookkeeping ---------------------------------------------

void VolumeSetDevice::NoteMemberFailure(int m, const Status& s) {
  Member* member = members_[m].get();
  if (s.IsUnavailable() || s.IsIOError()) {
    int streak = member->fail_streak.fetch_add(1, std::memory_order_relaxed) + 1;
    if ((s.IsUnavailable() || streak >= kOfflineStreak) &&
        member->online.exchange(false, std::memory_order_relaxed)) {
      m_offline_->Add(1);
    }
  }
}

void VolumeSetDevice::NoteMemberSuccess(int m) {
  Member* member = members_[m].get();
  member->fail_streak.store(0, std::memory_order_relaxed);
  if (!member->online.exchange(true, std::memory_order_relaxed)) {
    m_offline_->Add(-1);
  }
}

bool VolumeSetDevice::ShouldTryMember(int m) {
  Member* member = members_[m].get();
  if (member->online.load(std::memory_order_relaxed)) return true;
  return member->probe_tick.fetch_add(1, std::memory_order_relaxed) %
             kProbeInterval ==
         0;
}

Status VolumeSetDevice::ReadFromMember(int m, PageId local, uint32_t n,
                                       uint8_t* out) {
  Status s = members_[m]->verified->ReadPages(local, n, out);
  if (s.ok()) {
    NoteMemberSuccess(m);
  } else {
    NoteMemberFailure(m, s);
  }
  return s;
}

// ---- data path -------------------------------------------------------------

Status VolumeSetDevice::ReadChunkRange(const Chunk& chunk, uint32_t offset,
                                       uint32_t n, uint8_t* out) {
  int primary = chunk.primary;
  Status s;
  bool skipped_primary = !ShouldTryMember(primary);
  if (!skipped_primary) {
    s = ReadFromMember(primary, local_page(chunk.primary_block, offset), n,
                       out);
    if (s.ok()) return s;
  } else {
    s = Status::Unavailable("volume " + std::to_string(primary) +
                            " is offline");
  }
  if (chunk.replica != kNoReplica) {
    Status r = ReadFromMember(chunk.replica,
                              local_page(chunk.replica_block, offset), n, out);
    if (r.ok()) {
      failover_reads_.fetch_add(1, std::memory_order_relaxed);
      m_failover_->Inc();
      return r;
    }
    // Last resort: the offline flag that made us skip the primary may be
    // stale (the volume healed but no probe has hit it yet). With the
    // replica genuinely failing, try the primary for real before
    // declaring the chunk lost — a wrongly-skipped healthy copy must
    // never turn into an Unavailable read.
    if (skipped_primary) {
      s = ReadFromMember(primary, local_page(chunk.primary_block, offset), n,
                         out);
      if (s.ok()) return s;
    }
    // Both copies failed: report loss of availability when a whole volume
    // is gone, otherwise the primary's (more specific) error.
    if (r.IsUnavailable() && !s.IsCorruption()) {
      return Status::Unavailable("no live copy of the requested pages: " +
                                 r.ToString());
    }
  }
  if (!members_[primary]->online.load(std::memory_order_relaxed) &&
      !s.IsCorruption()) {
    return Status::Unavailable("no live copy of the requested pages: " +
                               s.ToString());
  }
  return s;
}

Status VolumeSetDevice::ReadBothAndRepair(const Chunk& chunk, uint32_t offset,
                                          uint32_t n, uint8_t* out) {
  if (chunk.replica == kNoReplica) {
    return ReadFromMember(chunk.primary,
                          local_page(chunk.primary_block, offset), n, out);
  }
  PageId p_local = local_page(chunk.primary_block, offset);
  PageId r_local = local_page(chunk.replica_block, offset);
  Status p = ReadFromMember(chunk.primary, p_local, n, out);
  std::vector<uint8_t> mirror(size_t{n} * page_size_);
  Status r = ReadFromMember(chunk.replica, r_local, n, mirror.data());
  auto heal = [&](int m, PageId local, const uint8_t* good) {
    Status w = members_[m]->verified->WritePages(local, n, good);
    if (w.ok()) {
      members_[m]->repaired_pages.fetch_add(n, std::memory_order_relaxed);
      repaired_pages_.fetch_add(n, std::memory_order_relaxed);
      m_repaired_->Inc(n);
      NoteMemberSuccess(m);
    } else {
      // Best effort: an offline mirror cannot be healed right now; the
      // next scrub after it returns will.
      NoteMemberFailure(m, w);
    }
  };
  if (p.ok() && r.ok()) {
    if (std::memcmp(out, mirror.data(), size_t{n} * page_size_) != 0) {
      // Both copies verify but disagree — a write that failed after
      // updating one side. The primary is what readers have been served;
      // make the mirror match it.
      heal(chunk.replica, r_local, out);
    }
    return Status::OK();
  }
  if (p.ok()) {
    heal(chunk.replica, r_local, out);
    return Status::OK();
  }
  if (r.ok()) {
    std::memcpy(out, mirror.data(), size_t{n} * page_size_);
    heal(chunk.primary, p_local, mirror.data());
    failover_reads_.fetch_add(1, std::memory_order_relaxed);
    m_failover_->Inc();
    return Status::OK();
  }
  return p.IsCorruption() ? p : r;
}

Status VolumeSetDevice::DoRead(PageId first, uint32_t n, uint8_t* out) {
  bool repairing = VolumeRepairScope::ActiveSet() == this;
  PageId page = first;
  uint32_t left = n;
  uint8_t* dst = out;
  while (left > 0) {
    uint64_t c = chunk_for(page);
    uint32_t off = offset_in_chunk(page);
    uint32_t span =
        page == 0 ? 1
                  : std::min(left, options_.chunk_pages - off);
    Chunk chunk;
    {
      SharedLatchGuard g(map_latch_);
      if (c >= chunks_.size()) {
        return Status::OutOfRange("read beyond the placed volume set");
      }
      chunk = chunks_[c];
    }
    Status s = repairing ? ReadBothAndRepair(chunk, off, span, dst)
                         : ReadChunkRange(chunk, off, span, dst);
    EOS_RETURN_IF_ERROR(s);
    page += span;
    left -= span;
    dst += size_t{span} * page_size_;
  }
  return Status::OK();
}

Status VolumeSetDevice::WriteChunkRange(const Chunk& chunk, uint32_t offset,
                                        uint32_t n, const uint8_t* data) {
  // Replica first: if the pair diverges because the second write failed,
  // the copy readers prefer (the primary) still holds the old bytes, which
  // matches the caller's unwind-to-old-state semantics.
  if (chunk.replica != kNoReplica) {
    Status r = members_[chunk.replica]->verified->WritePages(
        local_page(chunk.replica_block, offset), n, data);
    if (!r.ok()) {
      NoteMemberFailure(chunk.replica, r);
      degraded_writes_.fetch_add(1, std::memory_order_relaxed);
      m_degraded_write_->Inc();
      return r;
    }
    NoteMemberSuccess(chunk.replica);
  }
  Status p = members_[chunk.primary]->verified->WritePages(
      local_page(chunk.primary_block, offset), n, data);
  if (!p.ok()) {
    NoteMemberFailure(chunk.primary, p);
    degraded_writes_.fetch_add(1, std::memory_order_relaxed);
    m_degraded_write_->Inc();
    return p;
  }
  NoteMemberSuccess(chunk.primary);
  return Status::OK();
}

Status VolumeSetDevice::DoWrite(PageId first, uint32_t n,
                                const uint8_t* data) {
  PageId page = first;
  uint32_t left = n;
  const uint8_t* src = data;
  while (left > 0) {
    uint64_t c = chunk_for(page);
    uint32_t off = offset_in_chunk(page);
    uint32_t span =
        page == 0 ? 1
                  : std::min(left, options_.chunk_pages - off);
    Chunk chunk;
    {
      SharedLatchGuard g(map_latch_);
      if (c >= chunks_.size()) {
        return Status::OutOfRange("write beyond the placed volume set");
      }
      chunk = chunks_[c];
    }
    EOS_RETURN_IF_ERROR(WriteChunkRange(chunk, off, span, src));
    page += span;
    left -= span;
    src += size_t{span} * page_size_;
  }
  return Status::OK();
}

Status VolumeSetDevice::Sync() {
  // Offline members are excluded from the durability barrier: every write
  // that touched them already failed typed, so their chunks are durable
  // only through the mirror copy until they return.
  Status first_failure;
  for (size_t i = 0; i < members_.size(); ++i) {
    Member* m = members_[i].get();
    if (!m->online.load(std::memory_order_relaxed)) continue;
    Status s = m->verified->Sync();
    if (!s.ok()) {
      NoteMemberFailure(static_cast<int>(i), s);
      if (!s.IsUnavailable() && first_failure.ok()) first_failure = s;
    }
  }
  return first_failure;
}

// ---- introspection ---------------------------------------------------------

StatusOr<VolumeSetDevice::Location> VolumeSetDevice::Resolve(
    PageId page) const {
  SharedLatchGuard g(map_latch_);
  uint64_t c = chunk_for(page);
  if (c >= chunks_.size()) {
    return Status::OutOfRange("page beyond the placed volume set");
  }
  const Chunk& chunk = chunks_[c];
  uint32_t off = offset_in_chunk(page);
  Location loc;
  loc.member = chunk.primary;
  loc.local = local_page(chunk.primary_block, off);
  if (chunk.replica != kNoReplica) {
    loc.replica_member = chunk.replica;
    loc.replica_local = local_page(chunk.replica_block, off);
  }
  return loc;
}

VolumeSetDevice::Health VolumeSetDevice::GetHealth() const {
  SharedLatchGuard g(map_latch_);
  Health h;
  h.mirrored = options_.mirrored;
  h.chunk_pages = options_.chunk_pages;
  h.chunks = chunks_.size();
  h.failover_reads = failover_reads_.load(std::memory_order_relaxed);
  h.degraded_writes = degraded_writes_.load(std::memory_order_relaxed);
  h.shed_placements = shed_placements_.load(std::memory_order_relaxed);
  h.repaired_pages = repaired_pages_.load(std::memory_order_relaxed);
  h.members.resize(members_.size());
  for (size_t i = 0; i < members_.size(); ++i) {
    const Member* m = members_[i].get();
    MemberHealth& mh = h.members[i];
    mh.index = static_cast<int>(i);
    mh.online = m->online.load(std::memory_order_relaxed);
    mh.shedding = m->shedding.load(std::memory_order_relaxed);
    mh.payload_pages = m->verified->page_count();
    mh.data_blocks = m->next_block;
    mh.capacity_pages = options_.member_capacity_pages;
    mh.quarantined_pages = m->verified->quarantined_count();
    mh.repaired_pages = m->repaired_pages.load(std::memory_order_relaxed);
    uint64_t used = kHeaderPages + m->next_block * uint64_t{h.chunk_pages};
    // Uncapped members grow on demand, so "allocated" is the denominator —
    // but an offline device may report a stale (even zero) size, so never
    // let used exceed it or the percentage explodes into nonsense.
    uint64_t denom = mh.capacity_pages != 0
                         ? mh.capacity_pages
                         : std::max<uint64_t>(mh.payload_pages, used);
    mh.fill_percent = denom == 0 ? 0.0
                                 : 100.0 * static_cast<double>(used) /
                                       static_cast<double>(denom);
  }
  for (const Chunk& c : chunks_) {
    h.members[c.primary].primary_chunks++;
    if (c.replica != kNoReplica) h.members[c.replica].replica_chunks++;
  }
  return h;
}

}  // namespace eos
