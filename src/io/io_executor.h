#ifndef EOS_IO_IO_EXECUTOR_H_
#define EOS_IO_IO_EXECUTOR_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/deadline.h"
#include "common/status.h"

namespace eos {

// Fixed-size worker pool for the parallel I/O engine (DESIGN.md "Parallel
// I/O and zero-copy paths").
//
// The data paths hand it batches of independent page-run transfers — one
// task per physically contiguous run — and join. Each task runs a complete
// read or write through whatever device stack the caller uses, so layered
// work (checksum verification in VerifiedPageDevice, fault injection in
// ChaosPageDevice) executes on the worker that performed the transfer, not
// serialized on the submitting thread.
//
// Semantics:
//   * RunBatch blocks until every task has finished and returns the first
//     non-OK status in task order (error fan-in); remaining tasks still run
//     to completion, so buffers they reference stay valid for exactly the
//     duration of the call.
//   * Submit returns a Ticket the caller joins later (read-ahead uses this);
//     an unjoined Ticket joins in its destructor, so a task can never
//     outlive the buffers its closure captured.
//   * A pool of 0 threads runs everything inline on the caller — the serial
//     fallback used when parallelism is disabled; single-task batches also
//     run inline to skip the handoff latency.
//   * The destructor drains queued tasks, then joins the workers.
//
// Tasks must not submit to the same executor they run on (no nesting), and
// must be independent: the pool provides no ordering between tasks of one
// batch.
class IoExecutor {
 public:
  explicit IoExecutor(size_t threads);
  ~IoExecutor();

  IoExecutor(const IoExecutor&) = delete;
  IoExecutor& operator=(const IoExecutor&) = delete;

  size_t threads() const { return workers_.size(); }

  // Joinable handle on one submitted task. Move-only; joins on destruction
  // if the caller has not.
  class Ticket {
   public:
    Ticket() = default;
    Ticket(Ticket&& o) noexcept { *this = std::move(o); }
    Ticket& operator=(Ticket&& o) noexcept;
    ~Ticket() { (void)Wait(); }

    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;

    bool valid() const { return state_ != nullptr; }

    // Blocks until the task finishes and returns its status; detaches the
    // ticket (subsequent Wait calls return OK).
    Status Wait();

   private:
    friend class IoExecutor;
    struct TaskState;
    explicit Ticket(std::shared_ptr<TaskState> state)
        : state_(std::move(state)) {}

    std::shared_ptr<TaskState> state_;
  };

  // Enqueues one task (runs inline with 0 workers).
  Ticket Submit(std::function<Status()> fn);

  // Runs all tasks and joins; first non-OK status in task order.
  Status RunBatch(std::vector<std::function<Status()>> tasks);

  // Process-wide pool shared by the data paths. Sized by the EOS_IO_THREADS
  // environment variable (read once); defaults to
  // min(4, hardware_concurrency). EOS_IO_THREADS=0 yields an inline
  // executor, the global kill switch for parallel I/O.
  static IoExecutor* Default();

 private:
  struct Ticket::TaskState {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    Status status;
    std::function<Status()> fn;
    // Submitter's ambient deadline/cancellation, captured by value because
    // thread-locals do not cross into the worker pool. Checked before the
    // task runs (queued work is skipped once the bound has passed) and
    // re-installed around fn so device-level checks see it too.
    OpContext ctx;
    bool has_ctx = false;
  };
  using TaskState = Ticket::TaskState;

  void WorkerLoop();
  static void RunTask(TaskState* t);

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::shared_ptr<TaskState>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace eos

#endif  // EOS_IO_IO_EXECUTOR_H_
