#ifndef EOS_IO_PAGER_H_
#define EOS_IO_PAGER_H_

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "common/bytes.h"
#include "common/latch.h"
#include "common/status.h"
#include "io/page_device.h"
#include "obs/metrics.h"

namespace eos {

class Pager;

// RAII pin on a cached page. While a handle is alive the frame cannot be
// evicted; destruction unpins. Move-only.
class PageHandle {
 public:
  PageHandle() = default;
  PageHandle(PageHandle&& o) noexcept { *this = std::move(o); }
  PageHandle& operator=(PageHandle&& o) noexcept;
  ~PageHandle();

  PageHandle(const PageHandle&) = delete;
  PageHandle& operator=(const PageHandle&) = delete;

  bool valid() const { return pager_ != nullptr; }
  PageId id() const;
  uint8_t* data();
  const uint8_t* data() const;

  // Marks the page dirty; it is written back on eviction or FlushAll().
  void MarkDirty();

  // Explicitly unpins early.
  void Reset();

 private:
  friend class Pager;
  PageHandle(Pager* pager, size_t frame, PageId id, uint8_t* data)
      : pager_(pager), frame_(frame), id_(id), data_(data) {}

  Pager* pager_ = nullptr;
  size_t frame_ = 0;
  // Cached under the pager latch at pin time so accessors never touch the
  // frame table; the buffer is stable while the pin is held.
  PageId id_ = kInvalidPage;
  uint8_t* data_ = nullptr;
};

// Small LRU buffer cache, used for pages that are touched repeatedly and
// randomly: buddy space directories and large-object index nodes. Leaf
// segment data deliberately bypasses the pager — the paper's design streams
// multi-page segments directly, and caching them would hide the seek
// behaviour the benches measure.
//
// Thread-safe: frame bookkeeping is latched; a pinned frame's buffer is
// stable (handles cache it at pin time and frame buffers never move), so
// handle data access needs no latch. Concurrent use of the same page's
// buffer is the caller's concern (pin the page through one owner at a
// time).
//
// `capacity` is a soft bound: in write-through mode a device outage can
// strand dirty frames that refuse to flush, and a read must never inherit
// that write error just because every evictable frame is stuck. When no
// clean victim exists the pager grows an overflow frame instead; growth
// stops once flushes succeed again and the overflow frames rejoin the
// normal reuse pool.
class Pager {
 public:
  // `capacity` frames; device must outlive the pager.
  Pager(PageDevice* device, size_t capacity);
  ~Pager();

  Pager(const Pager&) = delete;
  Pager& operator=(const Pager&) = delete;

  // Pins the page, reading it from the device on a miss.
  StatusOr<PageHandle> Fetch(PageId id);

  // Pins a zero-filled frame for `id` without reading the device (for pages
  // being initialized); the frame starts dirty.
  StatusOr<PageHandle> Zeroed(PageId id);

  // Writes back every dirty frame (pinned or not).
  Status FlushAll();

  // Flushes and evicts every unpinned frame; benches call this to make the
  // next operation run cold.
  Status EvictAll();

  // Discards any cached copy of `id` without writing it back (the page was
  // freed). A frame that is still pinned — a snapshot reader mid-traversal
  // of an index page whose version chain just retired it — is detached from
  // the page map and marked doomed instead; the pinned readers keep their
  // stable buffer and the frame returns to the free list at the last Unpin.
  void Invalidate(PageId id);

  // Write-through mode (crash-safe configuration): MarkDirty persists the
  // frame to the device immediately instead of deferring to eviction or
  // FlushAll. The tree layers write children before parents, so with
  // write-through every durable page only references other durable pages —
  // the WAL-style ordering recovery depends on. If the immediate write
  // fails the frame simply stays dirty and the error surfaces at the next
  // flush; durability is never over-reported.
  void set_write_through(bool on) { write_through_ = on; }
  bool write_through() const { return write_through_; }

  PageDevice* device() { return device_; }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t evictions() const { return evictions_; }
  uint64_t dirty_writebacks() const { return dirty_writebacks_; }
  size_t cached_pages() const { return map_.size(); }

 private:
  friend class PageHandle;

  struct Frame {
    PageId id = kInvalidPage;
    Bytes data;
    uint32_t pins = 0;
    bool dirty = false;
    // Invalidated while pinned: already out of map_, freed when pins drop
    // to zero. Never written back.
    bool doomed = false;
    uint64_t tick = 0;
  };

  StatusOr<size_t> GetFrame(PageId id, bool read, bool* was_hit);
  StatusOr<size_t> FindVictim(bool require_clean = false);
  Status FlushFrame(Frame& f);
  void Unpin(size_t frame);
  void MarkFrameDirty(size_t frame);

  mutable Latch latch_;
  PageDevice* device_;
  size_t capacity_;
  bool write_through_ = false;
  // Deque: overflow growth must not move existing frames (pinned handles
  // hold their buffer pointers; Unpin/MarkDirty index by frame number).
  std::deque<Frame> frames_;
  std::vector<size_t> free_frames_;
  std::unordered_map<PageId, size_t> map_;
  uint64_t tick_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
  uint64_t dirty_writebacks_ = 0;

  // Process-wide metric mirrors (stable registry pointers, looked up once).
  obs::Counter* m_hit_;
  obs::Counter* m_miss_;
  obs::Counter* m_eviction_;
  obs::Counter* m_writeback_;
  obs::Gauge* m_cached_;
};

}  // namespace eos

#endif  // EOS_IO_PAGER_H_
