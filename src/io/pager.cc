#include "io/pager.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "obs/metric_names.h"

namespace eos {

PageHandle& PageHandle::operator=(PageHandle&& o) noexcept {
  if (this != &o) {
    Reset();
    pager_ = o.pager_;
    frame_ = o.frame_;
    id_ = o.id_;
    data_ = o.data_;
    o.pager_ = nullptr;
    o.data_ = nullptr;
  }
  return *this;
}

PageHandle::~PageHandle() { Reset(); }

void PageHandle::Reset() {
  if (pager_ != nullptr) {
    pager_->Unpin(frame_);
    pager_ = nullptr;
  }
}

PageId PageHandle::id() const { return id_; }

uint8_t* PageHandle::data() { return data_; }

const uint8_t* PageHandle::data() const { return data_; }

void PageHandle::MarkDirty() { pager_->MarkFrameDirty(frame_); }

Pager::Pager(PageDevice* device, size_t capacity)
    : device_(device), capacity_(capacity == 0 ? 1 : capacity) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  m_hit_ = reg.counter(obs::kPagerHit);
  m_miss_ = reg.counter(obs::kPagerMiss);
  m_eviction_ = reg.counter(obs::kPagerEviction);
  m_writeback_ = reg.counter(obs::kPagerWriteback);
  m_cached_ = reg.gauge(obs::kPagerCachedPages);
  frames_.resize(capacity_);
  for (auto& f : frames_) f.data.resize(device_->page_size());
  free_frames_.reserve(capacity_);
  for (size_t i = 0; i < capacity_; ++i) free_frames_.push_back(capacity_ - 1 - i);
}

Pager::~Pager() {
  // Callers are expected to FlushAll(); flush here as a safety net but
  // ignore errors (destructors cannot report them).
  (void)FlushAll();
}

StatusOr<size_t> Pager::GetFrame(PageId id, bool read, bool* was_hit) {
  auto it = map_.find(id);
  if (it != map_.end()) {
    *was_hit = true;
    return it->second;
  }
  *was_hit = false;
  size_t idx;
  if (!free_frames_.empty()) {
    idx = free_frames_.back();
    free_frames_.pop_back();
  } else {
    EOS_ASSIGN_OR_RETURN(idx, FindVictim());
    Status fs = FlushFrame(frames_[idx]);
    if (!fs.ok()) {
      // The victim's write-back failed (its volume may be offline). Fall
      // back to the oldest clean frame so an unrelated read does not
      // inherit the write error; the dirty frame stays cached for retry.
      StatusOr<size_t> clean = FindVictim(/*require_clean=*/true);
      if (clean.ok()) {
        idx = *clean;
      } else {
        // Every unpinned frame is dirty and stuck behind the same outage.
        // Grow an overflow frame rather than failing the read: the stuck
        // frames keep the only copy of committed state, so they can be
        // neither dropped nor flushed, yet unrelated reads must proceed.
        // Once flushes succeed again these frames rejoin the reuse pool.
        frames_.emplace_back();
        frames_.back().data.resize(device_->page_size());
        idx = frames_.size() - 1;
        Frame& nf = frames_[idx];
        nf.id = id;
        nf.pins = 0;
        nf.dirty = false;
        if (read) {
          Status s = device_->ReadPages(id, 1, nf.data.data());
          if (!s.ok()) {
            nf.id = kInvalidPage;
            free_frames_.push_back(idx);
            return s;
          }
        } else {
          std::memset(nf.data.data(), 0, nf.data.size());
        }
        map_[id] = idx;
        m_cached_->Add(1);
        return idx;
      }
    }
    map_.erase(frames_[idx].id);
    ++evictions_;
    m_eviction_->Inc();
    m_cached_->Add(-1);
  }
  Frame& f = frames_[idx];
  f.id = id;
  f.pins = 0;
  f.dirty = false;
  if (read) {
    Status s = device_->ReadPages(id, 1, f.data.data());
    if (!s.ok()) {
      // Return the frame: it is in neither map_ nor free_frames_ here, and
      // leaking it on every failed read would bleed the pager dry into
      // Busy once corrupt pages make read errors routine.
      f.id = kInvalidPage;
      free_frames_.push_back(idx);
      return s;
    }
  } else {
    std::memset(f.data.data(), 0, f.data.size());
  }
  map_[id] = idx;
  m_cached_->Add(1);
  return idx;
}

StatusOr<size_t> Pager::FindVictim(bool require_clean) {
  const size_t none = frames_.size();
  size_t best = none;
  uint64_t best_tick = ~uint64_t{0};
  for (size_t i = 0; i < frames_.size(); ++i) {
    const Frame& f = frames_[i];
    if (require_clean && f.dirty) continue;
    if (f.id != kInvalidPage && f.pins == 0 && f.tick < best_tick) {
      best = i;
      best_tick = f.tick;
    }
  }
  if (best == none) {
    return Status::Busy("pager: all frames pinned");
  }
  return best;
}

Status Pager::FlushFrame(Frame& f) {
  if (f.dirty) {
    EOS_RETURN_IF_ERROR(device_->WritePages(f.id, 1, f.data.data()));
    f.dirty = false;
    ++dirty_writebacks_;
    m_writeback_->Inc();
  }
  return Status::OK();
}

void Pager::MarkFrameDirty(size_t frame) {
  LatchGuard g(latch_);
  Frame& f = frames_[frame];
  f.dirty = true;
  // Write-through: persist now so this page is durable before any page
  // that references it is written. On failure the frame stays dirty and
  // the error surfaces at the next flush.
  if (write_through_) (void)FlushFrame(f);
}

StatusOr<PageHandle> Pager::Fetch(PageId id) {
  LatchGuard g(latch_);
  bool hit = false;
  EOS_ASSIGN_OR_RETURN(size_t idx, GetFrame(id, /*read=*/true, &hit));
  hit ? ++hits_ : ++misses_;
  (hit ? m_hit_ : m_miss_)->Inc();
  Frame& f = frames_[idx];
  ++f.pins;
  f.tick = ++tick_;
  return PageHandle(this, idx, f.id, f.data.data());
}

StatusOr<PageHandle> Pager::Zeroed(PageId id) {
  LatchGuard g(latch_);
  bool hit = false;
  EOS_ASSIGN_OR_RETURN(size_t idx, GetFrame(id, /*read=*/false, &hit));
  Frame& f = frames_[idx];
  if (hit) std::memset(f.data.data(), 0, f.data.size());
  f.dirty = true;
  ++f.pins;
  f.tick = ++tick_;
  return PageHandle(this, idx, f.id, f.data.data());
}

void Pager::Unpin(size_t frame) {
  LatchGuard g(latch_);
  Frame& f = frames_[frame];
  assert(f.pins > 0);
  --f.pins;
  if (f.pins == 0 && f.doomed) {
    // Last reader of an invalidated-while-pinned frame; recycle it now.
    f.id = kInvalidPage;
    f.doomed = false;
    free_frames_.push_back(frame);
  }
}

Status Pager::FlushAll() {
  LatchGuard g(latch_);
  // Batch the write-back: sort the dirty frames by page id and hand them
  // to the device as one run list. Runs over adjacent ids coalesce into a
  // single vectored transfer at the file layer, so a flush after bulk
  // inserts costs one syscall per contiguous cluster instead of one per
  // page.
  std::vector<Frame*> dirty;
  for (auto& f : frames_) {
    if (f.id != kInvalidPage && f.dirty) dirty.push_back(&f);
  }
  if (dirty.empty()) return Status::OK();
  std::sort(dirty.begin(), dirty.end(),
            [](const Frame* a, const Frame* b) { return a->id < b->id; });
  std::vector<ConstPageRun> runs;
  runs.reserve(dirty.size());
  for (const Frame* f : dirty) {
    runs.push_back(ConstPageRun{f->id, 1, f->data.data()});
  }
  Status s = device_->WriteRuns(runs.data(), runs.size());
  if (!s.ok()) {
    // The batch failed somewhere; retry frame by frame so the error names
    // the precise page and every frame that did make it out is marked
    // clean.
    for (Frame* f : dirty) EOS_RETURN_IF_ERROR(FlushFrame(*f));
    return Status::OK();
  }
  for (Frame* f : dirty) {
    f->dirty = false;
    ++dirty_writebacks_;
    m_writeback_->Inc();
  }
  return Status::OK();
}

Status Pager::EvictAll() {
  LatchGuard g(latch_);
  for (size_t i = 0; i < frames_.size(); ++i) {
    Frame& f = frames_[i];
    if (f.id != kInvalidPage && f.pins == 0) {
      EOS_RETURN_IF_ERROR(FlushFrame(f));
      map_.erase(f.id);
      m_cached_->Add(-1);
      // Reuse the slot via the free list.
      f.id = kInvalidPage;
      free_frames_.push_back(i);
    }
  }
  return Status::OK();
}

void Pager::Invalidate(PageId id) {
  LatchGuard g(latch_);
  auto it = map_.find(id);
  if (it == map_.end()) return;
  Frame& f = frames_[it->second];
  f.dirty = false;
  if (f.pins > 0) {
    // A snapshot reader still holds the buffer. Detach the frame from the
    // map so new fetches of this id read the device, and doom it: the
    // buffer stays valid (frames never reallocate, and version GC keeps
    // the on-device bytes allocated while any pin exists), and the last
    // Unpin returns the frame to the free list.
    f.doomed = true;
  } else {
    f.id = kInvalidPage;
    free_frames_.push_back(it->second);
  }
  map_.erase(it);
  m_cached_->Add(-1);
}

}  // namespace eos
