#ifndef EOS_IO_BUFFER_POOL_H_
#define EOS_IO_BUFFER_POOL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/latch.h"
#include "obs/metrics.h"

namespace eos {

// Recycled, page-aligned staging buffers for the data path (DESIGN.md
// "Parallel I/O and zero-copy paths").
//
// Every hot read/write path needs a transient buffer: the verified device
// stages physical pages, leaf I/O stages multi-page runs, the appender pads
// the trailing partial page. Allocating a fresh heap block per call puts an
// allocator round-trip (and a page-fault storm for large runs) on every
// I/O; the pool instead recycles power-of-two size classes so steady-state
// traffic performs zero per-I/O heap allocations — visible as a
// pool.buffers_reused hit rate of ~100% after warmup.
//
// Buffers are aligned to 4 KiB regardless of the volume page size, which
// keeps them compatible with O_DIRECT-style transfer alignment and avoids
// straddling cache lines on CRC sweeps.
//
// Ownership rules:
//   * Buffer is a move-only RAII handle; destruction returns the block to
//     the pool (or frees it when the class free list is full).
//   * A Buffer may be handed to another thread (the executor workers do
//     this); the pool itself is latched and thread-safe.
//   * The pool must outlive its Buffers. Default() lives for the process.
class BufferPool {
 public:
  class Buffer {
   public:
    Buffer() = default;
    Buffer(Buffer&& o) noexcept { *this = std::move(o); }
    Buffer& operator=(Buffer&& o) noexcept;
    ~Buffer() { Release(); }

    Buffer(const Buffer&) = delete;
    Buffer& operator=(const Buffer&) = delete;

    bool valid() const { return data_ != nullptr; }
    uint8_t* data() { return data_; }
    const uint8_t* data() const { return data_; }
    // The requested size (<= the class capacity actually reserved).
    size_t size() const { return size_; }

    // Returns the block to the pool early.
    void Release();

   private:
    friend class BufferPool;
    Buffer(BufferPool* pool, uint8_t* data, size_t size, int size_class)
        : pool_(pool), data_(data), size_(size), size_class_(size_class) {}

    BufferPool* pool_ = nullptr;
    uint8_t* data_ = nullptr;
    size_t size_ = 0;
    int size_class_ = -1;  // -1: unpooled (too large), freed on release
  };

  // Retains at most `max_per_class` idle buffers in each size class, and at
  // most `max_idle_bytes` across all classes combined. The per-class count
  // bound alone is not a memory bound: 16 idle buffers in every class from
  // 4 KiB to 16 MiB pins ~512 MiB. Whole-extent staging fills (cache fills,
  // large leaf reads) cycle through the megabyte classes, so returns beyond
  // the byte budget are freed instead of retained.
  explicit BufferPool(size_t max_per_class = 16,
                      size_t max_idle_bytes = 64u << 20);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  // A buffer of at least `n` bytes (n > 0). Never fails: allocation errors
  // propagate as std::bad_alloc like any other allocation in the library.
  Buffer Acquire(size_t n);

  // Idle (recyclable) buffers currently held, across all classes.
  size_t idle_buffers() const;

  // Bytes pinned by idle buffers; never exceeds the `max_idle_bytes`
  // construction bound.
  size_t idle_bytes() const;

  // Process-wide pool shared by the I/O stack.
  static BufferPool* Default();

 private:
  static constexpr size_t kMinClassBytes = 4096;          // smallest class
  static constexpr size_t kMaxPooledBytes = 16u << 20;    // beyond: malloc
  static constexpr int kNumClasses = 13;                  // 4 KiB .. 16 MiB

  static int SizeClass(size_t n);
  static size_t ClassBytes(int c) { return kMinClassBytes << c; }

  void Return(uint8_t* data, int size_class);

  const size_t max_per_class_;
  const size_t max_idle_bytes_;
  mutable Latch latch_;
  std::vector<uint8_t*> free_[kNumClasses];
  size_t idle_bytes_ = 0;  // sum of ClassBytes over free_, guarded by latch_

  obs::Counter* m_reused_;
  obs::Counter* m_allocated_;
};

}  // namespace eos

#endif  // EOS_IO_BUFFER_POOL_H_
