#ifndef EOS_BUDDY_SPACE_RESERVATION_H_
#define EOS_BUDDY_SPACE_RESERVATION_H_

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "io/page_device.h"

namespace eos {

class SegmentAllocator;

// RAII unwind scope for multi-extent mutations (DESIGN.md "Degraded
// operation under resource exhaustion").
//
// While a reservation is active on the current thread, the owning
// allocator routes its traffic through it:
//   * every Allocate/AllocateAtMost success is *tracked*;
//   * every Free is *parked* instead of applied — the extent stays
//     allocated (and its bytes intact) until the operation commits;
//   * in-place index-node overwrites register their pre-images here
//     (NodeStore::Write), so the on-disk tree can be put back exactly.
//
// Commit() ends the scope keeping the new state: tracked extents stay
// allocated (the new tree references them) and parked frees are replayed
// through the normal Free path, so a transactional FreeInterceptor still
// sees them. Destruction without Commit() unwinds: pre-images are written
// back, tracked extents are returned to the buddy system (bypassing any
// interceptor — no durable root ever referenced them), and parked frees
// are dropped (the pre-op tree still references those pages). Either way
// the allocation maps account for every page: a mid-operation NoSpace or
// I/O failure leaks nothing.
//
// Scopes nest: an inner reservation on the same allocator is an inert
// pass-through, so composed operations (e.g. Insert falling back to
// Append) unwind as one unit at the outermost scope.
class SpaceReservation {
 public:
  explicit SpaceReservation(SegmentAllocator* allocator);
  ~SpaceReservation();

  SpaceReservation(const SpaceReservation&) = delete;
  SpaceReservation& operator=(const SpaceReservation&) = delete;

  // False for a nested pass-through scope (the outer scope owns unwind).
  bool active() const { return active_; }

  // Keeps the new state: replays parked frees and deactivates unwind.
  // After a non-OK status (an I/O failure while replaying a free) the
  // reservation is still deactivated — the new tree is already live, so
  // unwinding would be worse than the stranded free.
  Status Commit();

  // The reservation observing the current thread's traffic on `allocator`,
  // or nullptr.
  static SpaceReservation* ActiveFor(const SegmentAllocator* allocator);

  // ---- hooks (allocator + node store) --------------------------------------

  void TrackAllocation(const Extent& e) { tracked_.push_back(e); }

  void ParkFree(const Extent& e) { parked_frees_.push_back(e); }

  // Saves the on-disk image of an index-node page about to be overwritten
  // in place; only the first image per page (the pre-op state) is kept.
  void RecordPageImage(PageId page, const uint8_t* data, uint32_t len);

  size_t tracked_extents() const { return tracked_.size(); }
  size_t parked_frees() const { return parked_frees_.size(); }

 private:
  void Unwind();

  SegmentAllocator* allocator_;
  bool active_ = false;
  bool settled_ = false;  // committed or unwound
  SpaceReservation* prev_ = nullptr;  // enclosing scope (other allocators)

  std::vector<Extent> tracked_;
  std::vector<Extent> parked_frees_;
  std::vector<std::pair<PageId, Bytes>> preimages_;
};

}  // namespace eos

#endif  // EOS_BUDDY_SPACE_RESERVATION_H_
