#ifndef EOS_BUDDY_BUDDY_SPACE_H_
#define EOS_BUDDY_BUDDY_SPACE_H_

#include <cstdint>
#include <vector>

#include "buddy/alloc_map.h"
#include "buddy/geometry.h"
#include "common/status.h"
#include "io/pager.h"

namespace eos {

// One buddy segment space: algorithms of Sections 3.1 and 3.2 operating on
// the space's single directory page (count array + allocation map). Every
// allocate/free touches only that page — the property behind the paper's
// "one disk access regardless of segment size" claim.
//
// Page addresses here are space-local data-page indices [0, space_pages);
// SegmentAllocator translates them to volume pages.
class BuddySpace {
 public:
  static constexpr uint16_t kMagic = 0xB0DD;

  // Binds to the directory page `dir_page` of a space laid out per `geo`.
  BuddySpace(Pager* pager, PageId dir_page, const BuddyGeometry& geo)
      : pager_(pager), dir_page_(dir_page), geo_(geo) {}

  // Initializes a fresh directory: all data pages free, decomposed into
  // maximal aligned segments; phantom pages past space_pages are marked
  // allocated forever.
  Status Format();

  // Allocates `npages` physically contiguous pages (1 <= npages <= 2^k).
  // Internally finds a free segment of the next power of two and trims the
  // remainder back to the free space with one-page precision (Section 3.2,
  // Figure 4). Returns the first page, or NoSpace.
  StatusOr<uint32_t> Allocate(uint32_t npages);

  // Frees any previously allocated range, not necessarily a whole segment;
  // remaining parts of partially-freed segments are re-encoded and freed
  // pages are buddy-coalesced iteratively.
  Status Free(uint32_t start, uint32_t npages);

  // Marks [start, start + npages) — which must be entirely free — as
  // allocated: the inverse of Free. Crash recovery rebuilds a freshly
  // formatted space by re-allocating exactly the extents the recovered
  // object trees reference; free remainders of the segments it carves from
  // are re-encoded and coalesced back.
  Status AllocateRange(uint32_t start, uint32_t npages);

  // Largest t with count[t] > 0, or -1 if the space is completely full.
  StatusOr<int> MaxFreeType();

  StatusOr<uint64_t> FreePages();

  StatusOr<std::vector<uint32_t>> Counts();

  // True iff every page in [start, start + npages) is allocated.
  StatusOr<bool> RangeAllocated(uint32_t start, uint32_t npages);

  // Recomputes free-segment counts from the map and cross-checks the count
  // array, canonical form, and page accounting. Test/validation hook.
  Status CheckInvariants();

  const BuddyGeometry& geometry() const { return geo_; }

 private:
  // Directory-page accessors over a pinned handle.
  uint16_t GetCount(PageHandle& h, uint32_t type) const;
  void SetCount(PageHandle& h, uint32_t type, uint16_t v) const;
  AllocMap Map(PageHandle& h) const;
  Status CheckMagic(PageHandle& h) const;

  // Marks [chunk, chunk + 2^type) free and coalesces upward with free
  // buddies (Section 3.2), maintaining counts.
  void FreeChunkAndCoalesce(PageHandle& h, uint32_t chunk, uint32_t type);

  // Writes [lo, hi) as a sequence of maximal aligned allocated chunks.
  void WriteAllocatedRange(PageHandle& h, uint32_t lo, uint32_t hi);

  Pager* pager_;
  PageId dir_page_;
  BuddyGeometry geo_;
};

}  // namespace eos

#endif  // EOS_BUDDY_BUDDY_SPACE_H_
