#ifndef EOS_BUDDY_ALLOC_MAP_H_
#define EOS_BUDDY_ALLOC_MAP_H_

#include <cstdint>
#include <vector>

namespace eos {

// The buddy-space page allocation map of Section 3.1 (Figure 2).
//
// Each byte B of the map describes the four pages 4B .. 4B+3:
//   * MSB set  -> a segment of size >= 4 pages starts at page 4B.
//                 Bit 6 is the status (1 = allocated), bits 5..0 the type t
//                 (segment size is 2^t pages).
//   * MSB clear, byte non-zero -> the low four bits give the status of the
//                 four pages individually (bit 3-j for page 4B+j,
//                 1 = allocated).
//   * byte == 0 -> all four pages are interior to a segment that starts at
//                 the first non-zero byte to the left.
//
// Free segments are kept *canonical*: a free segment of type t never has a
// free buddy of the same type (they would have been coalesced), so an
// all-free aligned quad is always encoded as a type-2 MSB byte and the
// all-zero byte is unambiguous. A non-zero nibble byte therefore always has
// at least one allocated page.
//
// AllocMap is a view over the raw map bytes inside a buddy-space directory
// page; it performs no I/O and maintains no counts (BuddySpace does both).
class AllocMap {
 public:
  static constexpr uint8_t kStartBit = 0x80;
  static constexpr uint8_t kAllocBit = 0x40;
  static constexpr uint8_t kTypeMask = 0x3F;
  static constexpr uint32_t kNone = ~uint32_t{0};

  // `bytes` must cover ceil(npages/4) bytes; `max_type` is the largest legal
  // segment type k. The view does not own the storage.
  AllocMap(uint8_t* bytes, uint32_t npages, uint32_t max_type)
      : bytes_(bytes), npages_(npages), max_type_(max_type) {}

  uint32_t npages() const { return npages_; }
  uint32_t max_type() const { return max_type_; }

  // A decoded segment: [start, start + 2^type).
  struct Segment {
    uint32_t start = kNone;
    uint32_t type = 0;
    bool allocated = false;

    uint32_t size() const { return uint32_t{1} << type; }
  };

  // True iff page p is allocated (p < npages). Follows zero bytes to the
  // owning segment's start byte.
  bool PageAllocated(uint32_t p) const;

  // The allocated segment whose range contains p. For pages tracked at
  // per-page granularity (nibble bytes) the result is a type-0 segment at p
  // itself; callers that free ranges re-decompose explicitly.
  Segment FindSegmentContaining(uint32_t p) const;

  // Page p must be free. Returns the type of the canonical free segment
  // that *starts* at p (asserts that p is its start).
  uint32_t CanonicalFreeTypeAt(uint32_t p) const;

  // True iff a canonical free segment of exactly `type` starts at `start`,
  // judged from the at-rest (fully coalesced) map.
  bool IsCanonicalFree(uint32_t start, uint32_t type) const;

  // Buddy test used *during* coalescing, where the chunk just freed next to
  // `start` makes the at-rest canonicality test lie for types 0 and 1: a
  // free buddy of a just-freed chunk cannot belong to a larger canonical
  // segment (that segment would have included the chunk), so for small
  // types it suffices that its pages are free.
  bool IsFreeForCoalesce(uint32_t start, uint32_t type) const;

  // Size in pages of the segment starting at p, as used by the skip-scan of
  // Section 3.1. For allocated pages in nibble bytes this is 1 (their exact
  // grouping is not recorded, which only slows the scan, never breaks it).
  uint32_t StepSizeAt(uint32_t p) const;

  // Marks [start, start + 2^type) as a single allocated segment.
  void WriteAllocated(uint32_t start, uint32_t type);

  // Marks [start, start + 2^type) as a single canonical free segment.
  // The caller is responsible for coalescing and count maintenance.
  void WriteFree(uint32_t start, uint32_t type);

  // The free-segment search of Section 3.1: starting at segment 0, skip by
  // max(want, size-of-segment-here) until a free segment of exactly `type`
  // is found. Returns its start page or kNone.
  uint32_t FindFree(uint32_t type) const;

  // Recomputes the number of canonical free segments of each type by
  // walking the whole map (validation/repair path only; normal operation
  // uses the maintained count array).
  std::vector<uint32_t> CountFreeSegments() const;

  // Raw byte accessor for tests reproducing Figure 3.
  uint8_t byte(uint32_t b) const { return bytes_[b]; }

 private:
  bool PageBitAllocated(uint32_t p) const {
    return (bytes_[p / 4] >> (3 - (p % 4))) & 1;
  }
  void SetPageBits(uint32_t start, uint32_t count, bool allocated);

  uint8_t* bytes_;
  uint32_t npages_;
  uint32_t max_type_;
};

}  // namespace eos

#endif  // EOS_BUDDY_ALLOC_MAP_H_
