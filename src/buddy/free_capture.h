#ifndef EOS_BUDDY_FREE_CAPTURE_H_
#define EOS_BUDDY_FREE_CAPTURE_H_

#include <utility>
#include <vector>

#include "buddy/segment_allocator.h"

namespace eos {

// Scoped FreeInterceptor that parks every extent freed while it is
// installed instead of returning it to the buddy system, restoring the
// previously installed interceptor on destruction.
//
// This is the pin-aware free parking the MVCC layer builds on (DESIGN.md
// §13): a committed LOB mutation's SpaceReservation replays its parked
// frees through the normal Free path at commit, and those frees are
// exactly the extents only the superseded version still references. With a
// capture scope wrapped around the mutation, the replay lands here and the
// captured list becomes the old version's retire batch — storage that must
// stay allocated until no snapshot pins that version, at which point the
// database GC routes it through the regular free path (and so through the
// CheckpointFreeList in crash-safe mode).
//
// On a failed mutation the reservation unwinds instead of committing:
// parked frees are dropped, nothing reaches this interceptor, and the old
// version's storage is untouched.
//
// Not thread-safe by itself: install/uninstall must be serialized with all
// other allocator free traffic (the database layer holds its directory
// latch exclusively around the scope).
class ScopedFreeCapture final : public FreeInterceptor {
 public:
  // When `enabled` is false the scope is inert — callers can wrap code
  // unconditionally and let a mode flag decide.
  ScopedFreeCapture(SegmentAllocator* allocator, bool enabled)
      : allocator_(allocator), enabled_(enabled) {
    if (!enabled_) return;
    previous_ = allocator_->free_interceptor();
    allocator_->set_free_interceptor(this);
  }

  ~ScopedFreeCapture() override {
    if (enabled_) allocator_->set_free_interceptor(previous_);
  }

  ScopedFreeCapture(const ScopedFreeCapture&) = delete;
  ScopedFreeCapture& operator=(const ScopedFreeCapture&) = delete;

  bool InterceptFree(const Extent& extent) override {
    captured_.push_back(extent);
    return true;
  }

  // Hands the captured extents to the caller (the retire batch) and
  // resets the scope for reuse.
  std::vector<Extent> TakeCaptured() { return std::move(captured_); }

  size_t captured() const { return captured_.size(); }

 private:
  SegmentAllocator* allocator_;
  bool enabled_;
  FreeInterceptor* previous_ = nullptr;
  std::vector<Extent> captured_;
};

}  // namespace eos

#endif  // EOS_BUDDY_FREE_CAPTURE_H_
