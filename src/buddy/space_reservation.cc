#include "buddy/space_reservation.h"

#include <cstring>

#include "buddy/segment_allocator.h"
#include "io/pager.h"
#include "obs/event_journal.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"

namespace eos {

namespace {

// Innermost reservation on this thread. Scopes on *different* allocators
// stack via prev_; a scope on the same allocator never registers (it is a
// pass-through), so the chain holds at most one entry per allocator.
thread_local SpaceReservation* g_top = nullptr;

obs::Counter* ReservedCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default().counter(obs::kSpaceReserved);
  return c;
}

obs::Counter* UnwoundCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default().counter(obs::kSpaceUnwoundExtents);
  return c;
}

}  // namespace

SpaceReservation* SpaceReservation::ActiveFor(
    const SegmentAllocator* allocator) {
  for (SpaceReservation* r = g_top; r != nullptr; r = r->prev_) {
    if (r->allocator_ == allocator) return r;
  }
  return nullptr;
}

SpaceReservation::SpaceReservation(SegmentAllocator* allocator)
    : allocator_(allocator) {
  if (allocator_ == nullptr || ActiveFor(allocator_) != nullptr) {
    settled_ = true;  // pass-through: nothing to commit or unwind
    return;
  }
  active_ = true;
  prev_ = g_top;
  g_top = this;
  ReservedCounter()->Inc();
}

SpaceReservation::~SpaceReservation() {
  if (!settled_) Unwind();
  if (active_) {
    // Unlink; scopes are strictly nested, so this is the top (or an inner
    // same-thread scope already popped itself).
    SpaceReservation** p = &g_top;
    while (*p != nullptr && *p != this) p = &(*p)->prev_;
    if (*p == this) *p = prev_;
  }
}

void SpaceReservation::RecordPageImage(PageId page, const uint8_t* data,
                                       uint32_t len) {
  for (const auto& pre : preimages_) {
    if (pre.first == page) return;  // first image = pre-op state, keep it
  }
  preimages_.emplace_back(page, Bytes(data, data + len));
}

Status SpaceReservation::Commit() {
  if (!active_ || settled_) return Status::OK();
  settled_ = true;
  preimages_.clear();
  tracked_.clear();
  // Unregister before replaying so the frees take the normal path (a
  // transactional interceptor must see them) instead of parking here.
  SpaceReservation** p = &g_top;
  while (*p != nullptr && *p != this) p = &(*p)->prev_;
  if (*p == this) *p = prev_;
  active_ = false;
  Status first;
  for (const Extent& e : parked_frees_) {
    Status s = allocator_->Free(e);
    if (first.ok() && !s.ok()) first = std::move(s);
  }
  parked_frees_.clear();
  return first;
}

void SpaceReservation::Unwind() {
  settled_ = true;
  obs::RecordEvent(obs::EventKind::kReservationUnwind, "space_unwind",
                   tracked_.size(), preimages_.size(), parked_frees_.size(),
                   /*ok=*/false);
  // 1. Put back every index-node page the operation overwrote in place.
  //    The pages are still allocated — their frees (if any) were parked.
  for (const auto& pre : preimages_) {
    allocator_->RestorePageImage(pre.first, pre.second);
  }
  preimages_.clear();
  // 2. Return the operation's own allocations. No durable root references
  //    them, so this bypasses both the reservation and any interceptor;
  //    cached frames are dropped so a stale flush can never trample a
  //    future reuse of the page.
  for (size_t i = tracked_.size(); i-- > 0;) {
    Status s = allocator_->FreeForUnwind(tracked_[i]);
    if (!s.ok()) {
      // The buddy maps were unreachable (e.g. a volume outage mid-unwind).
      // Park the extent on the allocator's retry list instead of leaking
      // it: a transactional free list would drop it with the failed op,
      // but no root references it, so the next checkpoint must free it.
      allocator_->DeferUnwindFree(tracked_[i]);
    }
  }
  UnwoundCounter()->Inc(tracked_.size());
  tracked_.clear();
  // 3. Drop parked frees: the pre-op tree still references those pages.
  parked_frees_.clear();
}

}  // namespace eos
