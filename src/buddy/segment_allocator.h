#ifndef EOS_BUDDY_SEGMENT_ALLOCATOR_H_
#define EOS_BUDDY_SEGMENT_ALLOCATOR_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "buddy/buddy_space.h"
#include "buddy/geometry.h"
#include "buddy/space_reservation.h"
#include "common/bytes.h"
#include "common/latch.h"
#include "common/status.h"
#include "io/pager.h"
#include "obs/metrics.h"

namespace eos {

// Hook for transactional deferred frees ([Lehm89]'s release locks,
// Section 4.5): when installed, Free() offers each extent to the
// interceptor first; a true return means the extent stays allocated until
// the owning transaction commits and frees it for real.
class FreeInterceptor {
 public:
  virtual ~FreeInterceptor() = default;
  virtual bool InterceptFree(const Extent& extent) = 0;
};

// Per-space free-list summary for fragmentation reporting.
struct SpaceReport {
  uint32_t space = 0;
  std::vector<uint32_t> free_counts;  // free_counts[t] segments of 2^t pages
  uint64_t free_pages = 0;
  int max_free_type = -1;
};

// Volume-level free-space shape, the aging signal of DESIGN.md §12: a
// fresh volume keeps its free space in a few maximal segments (entropy
// near 0, large mean); weeks of churn shatter it across every size class
// (entropy toward 1, mean toward one page), which is what forces future
// allocations to scatter and read costs to drift off the §4 model.
struct FragmentationStats {
  uint64_t free_pages = 0;
  uint64_t free_segments = 0;       // free-list entries across all spaces
  uint64_t largest_free_pages = 0;  // size of the largest free segment
  double mean_free_pages = 0.0;     // free_pages / free_segments
  // Shannon entropy of the free-segment size-class histogram, normalized
  // by log2(max_type + 1) into [0, 1]. 0 when free space sits in a single
  // size class (or there is none).
  double free_entropy = 0.0;
};

// Volume-level segment allocation across many buddy spaces (Section 3.3).
//
// Spaces are laid out back to back starting at `first_space_page`; each is
// one directory page followed by geometry.space_pages data pages. A
// main-memory *superdirectory* remembers (a possibly optimistic upper bound
// on) the largest free segment in each space, so allocation requests skip
// spaces that cannot possibly satisfy them. The superdirectory starts
// optimistic and self-corrects on first contact with each space, exactly as
// described in the paper; it is protected by a short-duration latch, not a
// transaction lock.
class SegmentAllocator {
 public:
  struct Options {
    uint32_t initial_spaces = 1;
    // When true, Allocate() appends a new space to the volume instead of
    // failing with NoSpace.
    bool auto_grow = true;
    // Pages held back from ordinary allocations so maintenance work (WAL
    // append, directory save, checkpoint) can always complete on a full
    // volume. Ordinary Allocate() calls refuse with NoSpace rather than
    // dip below this floor; an EmergencyScope on the calling thread may
    // consume the reserve. 0 disables the floor.
    uint32_t emergency_reserve_pages = 0;
    // Start each allocation scan at a rotating space index instead of
    // space 0. On a volume set — where consecutive spaces live on
    // different volumes — this stripes objects across members instead of
    // packing them onto the first volume. Off by default so single-volume
    // layouts (and the cost-model conformance suite) are unchanged.
    bool rotate_spaces = false;
  };

  // While one of these is live on the current thread, allocations may dip
  // into the emergency reserve. Used by the maintenance paths that must
  // make progress precisely when user mutations are being refused.
  class EmergencyScope {
   public:
    EmergencyScope() { ++Depth(); }
    ~EmergencyScope() { --Depth(); }
    EmergencyScope(const EmergencyScope&) = delete;
    EmergencyScope& operator=(const EmergencyScope&) = delete;
    static bool active() { return Depth() > 0; }

   private:
    static int& Depth() {
      thread_local int depth = 0;
      return depth;
    }
  };

  // Formats `options.initial_spaces` fresh spaces (growing the device as
  // needed) and returns an allocator over them.
  static StatusOr<std::unique_ptr<SegmentAllocator>> Format(
      Pager* pager, const BuddyGeometry& geo, PageId first_space_page,
      const Options& options);

  // Attaches to `num_spaces` previously formatted spaces.
  static StatusOr<std::unique_ptr<SegmentAllocator>> Attach(
      Pager* pager, const BuddyGeometry& geo, PageId first_space_page,
      uint32_t num_spaces, const Options& options);

  // Allocates exactly `npages` physically contiguous pages
  // (1 <= npages <= 2^k).
  StatusOr<Extent> Allocate(uint32_t npages);

  // Allocates the largest available contiguous run of at most `npages`
  // pages without growing the volume; NoSpace only if the volume is full.
  StatusOr<Extent> AllocateAtMost(uint32_t npages);

  // Frees an extent or any sub-range of one (used to trim segments with
  // one-page precision, Section 4.1).
  Status Free(const Extent& extent);

  uint32_t num_spaces() const { return num_spaces_; }
  const BuddyGeometry& geometry() const { return geo_; }
  uint32_t pages_per_space() const { return geo_.space_pages + 1; }

  // Volume page of space i's directory.
  PageId DirPage(uint32_t space) const {
    return first_space_page_ + uint64_t{space} * pages_per_space();
  }

  StatusOr<uint64_t> TotalFreePages();
  Status CheckInvariants();

  // Free pages from the in-memory counter — no directory I/O, safe on the
  // admission-control hot path. Tracks TryAllocate/Free exactly; parked
  // (reservation/interceptor) frees count as allocated until applied.
  uint64_t free_pages_fast() const;

  // The emergency floor (Options::emergency_reserve_pages, adjustable at
  // runtime). Admission control refuses ordinary mutations once
  // free_pages_fast() can no longer stay above it.
  uint32_t emergency_reserve_pages() const;
  void set_emergency_reserve_pages(uint32_t pages);

  // Admission probe for new mutations: OK while at least `headroom` pages
  // beyond the emergency reserve are free (growing the volume if allowed
  // and needed), typed NoSpace otherwise.
  Status AdmitMutation(uint32_t headroom = 1);

  // ---- test hooks (exhaustion torture) -------------------------------------

  // Fails the k-th subsequent Allocate/AllocateAtMost call (0 = the next)
  // with typed NoSpace, then disarms. -1 disarms immediately. The torture
  // harness enumerates k over a workload's alloc_calls() to visit every
  // allocation site.
  void set_alloc_fault_countdown(int64_t k);
  uint64_t alloc_calls() const;

  // Crash-recovery rebuild: reformats every space (all pages free) and
  // re-allocates exactly the extents in `live`. After a crash the on-disk
  // allocation maps may be torn or stale, but the object trees — walked
  // from the recovered roots — say precisely which pages are in use, so
  // reachability is the ground truth the maps are rebuilt from. Extents
  // that overlap each other are rejected as corruption.
  Status WipeAndRebuild(const std::vector<Extent>& live);

  // Fragmentation snapshot of every space.
  StatusOr<std::vector<SpaceReport>> Report();

  // Aggregates Report() into the volume-level free-space shape and mirrors
  // it into the frag.* gauges (free pages, segment count, entropy).
  StatusOr<FragmentationStats> FragStats();

  // True iff every page of `extent` is currently allocated — the deep
  // integrity check uses this to verify that index/leaf references point
  // at storage the buddy system actually considers live.
  StatusOr<bool> IsAllocated(const Extent& extent);

  // ---- unwind-failed frees -------------------------------------------------

  // An extent a reservation unwind could not return (its buddy directory
  // page was unreachable, e.g. during a volume outage). No root references
  // it, so it must eventually reach the buddy maps — never a transactional
  // free list, whose entries a failed operation drops. Parked extents are
  // retried by Database::Checkpoint and counted as reachable by LeakCheck.
  void DeferUnwindFree(const Extent& extent) {
    LatchGuard g(unwind_frees_latch_);
    deferred_unwind_frees_.push_back(extent);
  }
  std::vector<Extent> TakeDeferredUnwindFrees() {
    LatchGuard g(unwind_frees_latch_);
    std::vector<Extent> out;
    out.swap(deferred_unwind_frees_);
    return out;
  }
  std::vector<Extent> deferred_unwind_frees() const {
    LatchGuard g(unwind_frees_latch_);
    return deferred_unwind_frees_;
  }

  // Installs (or clears, with nullptr) the deferred-free hook.
  void set_free_interceptor(FreeInterceptor* interceptor) {
    free_interceptor_ = interceptor;
  }
  // Currently installed hook (nullptr if none) — lets a scoped interceptor
  // chain the previous one back on exit (buddy/free_capture.h).
  FreeInterceptor* free_interceptor() const { return free_interceptor_; }

  // Telemetry for the superdirectory experiment (E3): how many space
  // directories have been examined by allocation requests.
  uint64_t directory_visits() const { return directory_visits_; }
  void ResetDirectoryVisits() { directory_visits_ = 0; }

  // Disables the superdirectory (every allocation probes spaces in order),
  // for the ablation bench.
  void set_use_superdirectory(bool use) { use_superdirectory_ = use; }

  Pager* pager() { return pager_; }

 private:
  friend class SpaceReservation;

  // Unwind path of SpaceReservation: frees an extent immediately, skipping
  // the reservation and any interceptor (no durable root ever referenced
  // it), and drops stale cached frames of its pages.
  Status FreeForUnwind(const Extent& extent);

  // Unwind path of SpaceReservation: rewrites a page from its saved image.
  void RestorePageImage(PageId page, const Bytes& image);

  // The latched buddy free shared by Free() and FreeForUnwind().
  Status FreeInternal(const Extent& extent);

  // Counts the call and fires the armed test fault, if any (under op_latch_).
  Status TickAllocFault();

  // Typed NoSpace when granting `npages` would dip below the emergency
  // reserve and the volume cannot grow (under op_latch_).
  Status EnforceReserve(uint32_t npages);
  SegmentAllocator(Pager* pager, const BuddyGeometry& geo,
                   PageId first_space_page, uint32_t num_spaces,
                   const Options& options);

  BuddySpace Space(uint32_t i) { return BuddySpace(pager_, DirPage(i), geo_); }

  // Maps a volume page to (space index, local page); fails if the page is
  // a directory page or outside any space.
  Status Locate(PageId page, uint32_t* space, uint32_t* local) const;

  Status AddSpace();
  StatusOr<Extent> TryAllocate(uint32_t npages);
  Status RefreshHint(uint32_t space);

  Pager* pager_;
  BuddyGeometry geo_;
  PageId first_space_page_;
  uint32_t num_spaces_;
  Options options_;
  bool use_superdirectory_ = true;

  // hint_[i] = upper bound on the max free type in space i; kUnknown is the
  // optimistic initial value ("maybe a maximal segment is free").
  static constexpr int8_t kFull = -1;
  std::vector<int8_t> hints_;
  Latch superdir_latch_;
  uint64_t directory_visits_ = 0;
  uint64_t rotate_cursor_ = 0;  // under op_latch_ (rotate_spaces placer)
  Latch op_latch_;  // serializes allocator operations
  mutable Latch unwind_frees_latch_;
  std::vector<Extent> deferred_unwind_frees_;
  FreeInterceptor* free_interceptor_ = nullptr;
  // Atomics so the const accessors need no latch; mutations happen under
  // op_latch_ (or before the allocator is shared).
  std::atomic<int64_t> free_pages_fast_{0};
  uint32_t emergency_reserve_pages_ = 0;
  std::atomic<int64_t> alloc_fault_countdown_{-1};  // -1 = disarmed
  std::atomic<uint64_t> alloc_calls_{0};

  // Process-wide metric mirrors (stable registry pointers, looked up once).
  obs::Counter* m_alloc_;
  obs::Counter* m_free_;
  obs::Counter* m_free_deferred_;
  obs::Counter* m_space_added_;
  obs::Counter* m_refused_;
  obs::Counter* m_dir_visit_;
  obs::Histogram* m_alloc_pages_;
  obs::Gauge* m_free_pages_;
  obs::Gauge* m_managed_pages_;
};

}  // namespace eos

#endif  // EOS_BUDDY_SEGMENT_ALLOCATOR_H_
