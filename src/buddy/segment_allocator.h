#ifndef EOS_BUDDY_SEGMENT_ALLOCATOR_H_
#define EOS_BUDDY_SEGMENT_ALLOCATOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "buddy/buddy_space.h"
#include "buddy/geometry.h"
#include "common/latch.h"
#include "common/status.h"
#include "io/pager.h"
#include "obs/metrics.h"

namespace eos {

// Hook for transactional deferred frees ([Lehm89]'s release locks,
// Section 4.5): when installed, Free() offers each extent to the
// interceptor first; a true return means the extent stays allocated until
// the owning transaction commits and frees it for real.
class FreeInterceptor {
 public:
  virtual ~FreeInterceptor() = default;
  virtual bool InterceptFree(const Extent& extent) = 0;
};

// Per-space free-list summary for fragmentation reporting.
struct SpaceReport {
  uint32_t space = 0;
  std::vector<uint32_t> free_counts;  // free_counts[t] segments of 2^t pages
  uint64_t free_pages = 0;
  int max_free_type = -1;
};

// Volume-level segment allocation across many buddy spaces (Section 3.3).
//
// Spaces are laid out back to back starting at `first_space_page`; each is
// one directory page followed by geometry.space_pages data pages. A
// main-memory *superdirectory* remembers (a possibly optimistic upper bound
// on) the largest free segment in each space, so allocation requests skip
// spaces that cannot possibly satisfy them. The superdirectory starts
// optimistic and self-corrects on first contact with each space, exactly as
// described in the paper; it is protected by a short-duration latch, not a
// transaction lock.
class SegmentAllocator {
 public:
  struct Options {
    uint32_t initial_spaces = 1;
    // When true, Allocate() appends a new space to the volume instead of
    // failing with NoSpace.
    bool auto_grow = true;
  };

  // Formats `options.initial_spaces` fresh spaces (growing the device as
  // needed) and returns an allocator over them.
  static StatusOr<std::unique_ptr<SegmentAllocator>> Format(
      Pager* pager, const BuddyGeometry& geo, PageId first_space_page,
      const Options& options);

  // Attaches to `num_spaces` previously formatted spaces.
  static StatusOr<std::unique_ptr<SegmentAllocator>> Attach(
      Pager* pager, const BuddyGeometry& geo, PageId first_space_page,
      uint32_t num_spaces, const Options& options);

  // Allocates exactly `npages` physically contiguous pages
  // (1 <= npages <= 2^k).
  StatusOr<Extent> Allocate(uint32_t npages);

  // Allocates the largest available contiguous run of at most `npages`
  // pages without growing the volume; NoSpace only if the volume is full.
  StatusOr<Extent> AllocateAtMost(uint32_t npages);

  // Frees an extent or any sub-range of one (used to trim segments with
  // one-page precision, Section 4.1).
  Status Free(const Extent& extent);

  uint32_t num_spaces() const { return num_spaces_; }
  const BuddyGeometry& geometry() const { return geo_; }
  uint32_t pages_per_space() const { return geo_.space_pages + 1; }

  // Volume page of space i's directory.
  PageId DirPage(uint32_t space) const {
    return first_space_page_ + uint64_t{space} * pages_per_space();
  }

  StatusOr<uint64_t> TotalFreePages();
  Status CheckInvariants();

  // Crash-recovery rebuild: reformats every space (all pages free) and
  // re-allocates exactly the extents in `live`. After a crash the on-disk
  // allocation maps may be torn or stale, but the object trees — walked
  // from the recovered roots — say precisely which pages are in use, so
  // reachability is the ground truth the maps are rebuilt from. Extents
  // that overlap each other are rejected as corruption.
  Status WipeAndRebuild(const std::vector<Extent>& live);

  // Fragmentation snapshot of every space.
  StatusOr<std::vector<SpaceReport>> Report();

  // True iff every page of `extent` is currently allocated — the deep
  // integrity check uses this to verify that index/leaf references point
  // at storage the buddy system actually considers live.
  StatusOr<bool> IsAllocated(const Extent& extent);

  // Installs (or clears, with nullptr) the deferred-free hook.
  void set_free_interceptor(FreeInterceptor* interceptor) {
    free_interceptor_ = interceptor;
  }

  // Telemetry for the superdirectory experiment (E3): how many space
  // directories have been examined by allocation requests.
  uint64_t directory_visits() const { return directory_visits_; }
  void ResetDirectoryVisits() { directory_visits_ = 0; }

  // Disables the superdirectory (every allocation probes spaces in order),
  // for the ablation bench.
  void set_use_superdirectory(bool use) { use_superdirectory_ = use; }

 private:
  SegmentAllocator(Pager* pager, const BuddyGeometry& geo,
                   PageId first_space_page, uint32_t num_spaces,
                   const Options& options);

  BuddySpace Space(uint32_t i) { return BuddySpace(pager_, DirPage(i), geo_); }

  // Maps a volume page to (space index, local page); fails if the page is
  // a directory page or outside any space.
  Status Locate(PageId page, uint32_t* space, uint32_t* local) const;

  Status AddSpace();
  StatusOr<Extent> TryAllocate(uint32_t npages);
  Status RefreshHint(uint32_t space);

  Pager* pager_;
  BuddyGeometry geo_;
  PageId first_space_page_;
  uint32_t num_spaces_;
  Options options_;
  bool use_superdirectory_ = true;

  // hint_[i] = upper bound on the max free type in space i; kUnknown is the
  // optimistic initial value ("maybe a maximal segment is free").
  static constexpr int8_t kFull = -1;
  std::vector<int8_t> hints_;
  Latch superdir_latch_;
  uint64_t directory_visits_ = 0;
  Latch op_latch_;  // serializes allocator operations
  FreeInterceptor* free_interceptor_ = nullptr;

  // Process-wide metric mirrors (stable registry pointers, looked up once).
  obs::Counter* m_alloc_;
  obs::Counter* m_free_;
  obs::Counter* m_free_deferred_;
  obs::Counter* m_space_added_;
  obs::Counter* m_dir_visit_;
  obs::Histogram* m_alloc_pages_;
  obs::Gauge* m_free_pages_;
  obs::Gauge* m_managed_pages_;
};

}  // namespace eos

#endif  // EOS_BUDDY_SEGMENT_ALLOCATOR_H_
