#include "buddy/segment_allocator.h"

#include <cassert>
#include <cmath>
#include <cstring>

#include "obs/metric_names.h"

namespace eos {

SegmentAllocator::SegmentAllocator(Pager* pager, const BuddyGeometry& geo,
                                   PageId first_space_page,
                                   uint32_t num_spaces, const Options& options)
    : pager_(pager),
      geo_(geo),
      first_space_page_(first_space_page),
      num_spaces_(num_spaces),
      options_(options),
      // Optimistic initial hints: each space may hold a maximal segment.
      hints_(num_spaces, static_cast<int8_t>(geo.max_type)) {
  emergency_reserve_pages_ = options.emergency_reserve_pages;
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  m_alloc_ = reg.counter(obs::kBuddyAlloc);
  m_free_ = reg.counter(obs::kBuddyFree);
  m_free_deferred_ = reg.counter(obs::kBuddyFreeDeferred);
  m_space_added_ = reg.counter(obs::kBuddySpaceAdded);
  m_refused_ = reg.counter(obs::kSpaceRefused);
  m_dir_visit_ = reg.counter(obs::kBuddyDirectoryVisit);
  m_alloc_pages_ = reg.histogram(obs::kBuddyAllocPages);
  m_free_pages_ = reg.gauge(obs::kBuddyFreePages);
  m_managed_pages_ = reg.gauge(obs::kBuddyManagedPages);
}

StatusOr<std::unique_ptr<SegmentAllocator>> SegmentAllocator::Format(
    Pager* pager, const BuddyGeometry& geo, PageId first_space_page,
    const Options& options) {
  uint32_t n = options.initial_spaces == 0 ? 1 : options.initial_spaces;
  std::unique_ptr<SegmentAllocator> alloc(
      new SegmentAllocator(pager, geo, first_space_page, 0, options));
  for (uint32_t i = 0; i < n; ++i) {
    EOS_RETURN_IF_ERROR(alloc->AddSpace());
  }
  return alloc;
}

StatusOr<std::unique_ptr<SegmentAllocator>> SegmentAllocator::Attach(
    Pager* pager, const BuddyGeometry& geo, PageId first_space_page,
    uint32_t num_spaces, const Options& options) {
  if (num_spaces == 0) {
    return Status::InvalidArgument("volume has no buddy spaces");
  }
  std::unique_ptr<SegmentAllocator> alloc(
      new SegmentAllocator(pager, geo, first_space_page, num_spaces, options));
  // Verify every directory is present and well-formed, seeding the free-page
  // gauges from the on-disk counts as we go.
  for (uint32_t i = 0; i < num_spaces; ++i) {
    EOS_ASSIGN_OR_RETURN(std::vector<uint32_t> counts,
                         alloc->Space(i).Counts());
    int64_t free_pages = 0;
    for (uint32_t t = 0; t < counts.size(); ++t) {
      free_pages += int64_t{counts[t]} << t;
    }
    alloc->m_managed_pages_->Add(geo.space_pages);
    alloc->m_free_pages_->Add(free_pages);
    alloc->free_pages_fast_.fetch_add(free_pages, std::memory_order_relaxed);
  }
  return alloc;
}

Status SegmentAllocator::AddSpace() {
  PageId end = DirPage(num_spaces_) + pages_per_space();
  if (end > pager_->device()->page_count()) {
    EOS_RETURN_IF_ERROR(pager_->device()->Grow(end));
  }
  EOS_RETURN_IF_ERROR(
      BuddySpace(pager_, DirPage(num_spaces_), geo_).Format());
  ++num_spaces_;
  {
    LatchGuard g(superdir_latch_);
    hints_.push_back(static_cast<int8_t>(geo_.max_type));
  }
  m_space_added_->Inc();
  m_managed_pages_->Add(geo_.space_pages);
  m_free_pages_->Add(geo_.space_pages);
  free_pages_fast_.fetch_add(geo_.space_pages, std::memory_order_relaxed);
  return Status::OK();
}

Status SegmentAllocator::RefreshHint(uint32_t space) {
  EOS_ASSIGN_OR_RETURN(int t, Space(space).MaxFreeType());
  LatchGuard g(superdir_latch_);
  hints_[space] = static_cast<int8_t>(t);
  return Status::OK();
}

StatusOr<Extent> SegmentAllocator::TryAllocate(uint32_t npages) {
  uint32_t t_need = CeilLog2(npages);
  // With rotate_spaces on, each allocation starts its scan one space
  // further along, so equal-preference spaces (and, on a volume set, the
  // volumes hosting them) fill round-robin instead of first-fit.
  uint32_t start =
      options_.rotate_spaces && num_spaces_ > 0
          ? static_cast<uint32_t>(rotate_cursor_++ % num_spaces_)
          : 0;
  for (uint32_t k = 0; k < num_spaces_; ++k) {
    uint32_t i = (start + k) % num_spaces_;
    if (use_superdirectory_) {
      int8_t hint;
      {
        LatchGuard g(superdir_latch_);
        hint = hints_[i];
      }
      // Skip spaces that cannot possibly hold a segment this large. The
      // hint is an upper bound, so a skip is always safe; a visit may
      // discover the hint was optimistic and correct it.
      if (hint < static_cast<int8_t>(t_need)) continue;
    }
    ++directory_visits_;
    m_dir_visit_->Inc();
    auto r = Space(i).Allocate(npages);
    if (r.ok()) {
      if (!RefreshHint(i).ok()) {
        // The allocation already succeeded; failing now would leak the
        // extent. Keep the optimistic bound instead.
        LatchGuard h(superdir_latch_);
        hints_[i] = static_cast<int8_t>(geo_.max_type);
      }
      m_alloc_->Inc();
      m_alloc_pages_->Record(npages);
      m_free_pages_->Add(-int64_t{npages});
      free_pages_fast_.fetch_sub(npages, std::memory_order_relaxed);
      Extent e{DirPage(i) + 1 + r.value(), npages};
      if (SpaceReservation* res = SpaceReservation::ActiveFor(this)) {
        res->TrackAllocation(e);
      }
      return e;
    }
    if (!r.status().IsNoSpace()) return r.status();
    EOS_RETURN_IF_ERROR(RefreshHint(i));  // first wrong guess corrects it
  }
  return Status::NoSpace("no space can satisfy " + std::to_string(npages) +
                         " contiguous pages");
}

Status SegmentAllocator::TickAllocFault() {
  alloc_calls_.fetch_add(1, std::memory_order_relaxed);
  int64_t k = alloc_fault_countdown_.load(std::memory_order_relaxed);
  if (k < 0) return Status::OK();
  alloc_fault_countdown_.store(k - 1, std::memory_order_relaxed);
  if (k == 0) return Status::NoSpace("injected allocation fault");
  return Status::OK();
}

// Refuses the request (typed NoSpace) if satisfying it would leave fewer
// than the emergency reserve free, growing the volume first when allowed.
// Threads inside an EmergencyScope may consume the reserve.
Status SegmentAllocator::EnforceReserve(uint32_t npages) {
  if (emergency_reserve_pages_ == 0 || EmergencyScope::active()) {
    return Status::OK();
  }
  int64_t need = int64_t{npages} + emergency_reserve_pages_;
  if (free_pages_fast_.load(std::memory_order_relaxed) >= need) {
    return Status::OK();
  }
  if (options_.auto_grow) {
    (void)AddSpace();  // a grow failure just means the floor check decides
    if (free_pages_fast_.load(std::memory_order_relaxed) >= need) {
      return Status::OK();
    }
  }
  m_refused_->Inc();
  return Status::NoSpace(
      "allocation of " + std::to_string(npages) +
      " pages would breach the emergency reserve (" +
      std::to_string(emergency_reserve_pages_) + " pages held back)");
}

StatusOr<Extent> SegmentAllocator::Allocate(uint32_t npages) {
  if (npages == 0 || npages > geo_.max_segment_pages()) {
    return Status::InvalidArgument(
        "segment size must be in [1, " +
        std::to_string(geo_.max_segment_pages()) + "] pages");
  }
  LatchGuard g(op_latch_);
  EOS_RETURN_IF_ERROR(TickAllocFault());
  EOS_RETURN_IF_ERROR(EnforceReserve(npages));
  auto r = TryAllocate(npages);
  if (r.ok() || !r.status().IsNoSpace() || !options_.auto_grow) return r;
  EOS_RETURN_IF_ERROR(AddSpace());
  return TryAllocate(npages);
}

StatusOr<Extent> SegmentAllocator::AllocateAtMost(uint32_t npages) {
  if (npages == 0) return Status::InvalidArgument("zero-page allocation");
  if (npages > geo_.max_segment_pages()) npages = geo_.max_segment_pages();
  LatchGuard g(op_latch_);
  EOS_RETURN_IF_ERROR(TickAllocFault());
  EOS_RETURN_IF_ERROR(EnforceReserve(1));
  auto exact = TryAllocate(npages);
  if (exact.ok() || !exact.status().IsNoSpace()) return exact;
  // Find the space with the largest free segment and take that.
  int best_t = -1;
  for (uint32_t i = 0; i < num_spaces_; ++i) {
    EOS_RETURN_IF_ERROR(RefreshHint(i));
    LatchGuard h(superdir_latch_);
    if (hints_[i] > best_t) best_t = hints_[i];
  }
  if (best_t < 0) return Status::NoSpace("volume is full");
  return TryAllocate(uint32_t{1} << best_t);
}

Status SegmentAllocator::Locate(PageId page, uint32_t* space,
                                uint32_t* local) const {
  if (page < first_space_page_) {
    return Status::InvalidArgument("page below first buddy space");
  }
  uint64_t rel = page - first_space_page_;
  uint64_t s = rel / pages_per_space();
  uint64_t off = rel % pages_per_space();
  if (s >= num_spaces_ || off == 0) {
    return Status::InvalidArgument("page " + std::to_string(page) +
                                   " is not a data page of any space");
  }
  *space = static_cast<uint32_t>(s);
  *local = static_cast<uint32_t>(off - 1);
  return Status::OK();
}

Status SegmentAllocator::Free(const Extent& extent) {
  if (!extent.valid()) return Status::InvalidArgument("invalid extent");
  if (SpaceReservation* res = SpaceReservation::ActiveFor(this)) {
    // Parked: the extent stays allocated until the guarded operation
    // commits (the free then replays through this path) or unwinds (the
    // free is dropped — the pre-op tree still references these pages).
    res->ParkFree(extent);
    m_free_deferred_->Inc();
    return Status::OK();
  }
  if (free_interceptor_ != nullptr &&
      free_interceptor_->InterceptFree(extent)) {
    // Deferred: the segment stays allocated under a release lock until the
    // owning transaction commits.
    m_free_deferred_->Inc();
    return Status::OK();
  }
  return FreeInternal(extent);
}

Status SegmentAllocator::FreeForUnwind(const Extent& extent) {
  if (!extent.valid()) return Status::InvalidArgument("invalid extent");
  // Drop cached frames first: a stale dirty frame flushed later would
  // trample whatever next reuses these pages.
  for (uint32_t i = 0; i < extent.pages; ++i) {
    pager_->Invalidate(extent.first + i);
  }
  return FreeInternal(extent);
}

void SegmentAllocator::RestorePageImage(PageId page, const Bytes& image) {
  auto h = pager_->Zeroed(page);
  if (!h.ok()) return;  // unwind is best-effort on I/O failure
  std::memcpy(h.value().data(), image.data(), image.size());
  h.value().MarkDirty();
}

Status SegmentAllocator::FreeInternal(const Extent& extent) {
  LatchGuard g(op_latch_);
  uint32_t space, local;
  EOS_RETURN_IF_ERROR(Locate(extent.first, &space, &local));
  uint32_t space_end, local_end;
  EOS_RETURN_IF_ERROR(Locate(extent.first + extent.pages - 1, &space_end,
                             &local_end));
  if (space_end != space) {
    return Status::InvalidArgument("extent spans buddy spaces");
  }
  EOS_RETURN_IF_ERROR(Space(space).Free(local, extent.pages));
  m_free_->Inc();
  m_free_pages_->Add(extent.pages);
  free_pages_fast_.fetch_add(extent.pages, std::memory_order_relaxed);
  // The free is applied above; the hint is only a search accelerator.
  // Reporting a refresh failure (dir page unreachable during a volume
  // outage) would make callers re-queue an extent that IS free, and the
  // next drain would double-free it into someone's live allocation. Fall
  // back to the optimistic bound — the next visit corrects it.
  if (!RefreshHint(space).ok()) {
    LatchGuard h(superdir_latch_);
    hints_[space] = static_cast<int8_t>(geo_.max_type);
  }
  return Status::OK();
}

uint64_t SegmentAllocator::free_pages_fast() const {
  int64_t v = free_pages_fast_.load(std::memory_order_relaxed);
  return v < 0 ? 0 : static_cast<uint64_t>(v);
}

uint32_t SegmentAllocator::emergency_reserve_pages() const {
  return emergency_reserve_pages_;
}

void SegmentAllocator::set_emergency_reserve_pages(uint32_t pages) {
  emergency_reserve_pages_ = pages;
}

Status SegmentAllocator::AdmitMutation(uint32_t headroom) {
  if (emergency_reserve_pages_ == 0) return Status::OK();
  int64_t need = int64_t{emergency_reserve_pages_} + headroom;
  if (free_pages_fast_.load(std::memory_order_relaxed) >= need) {
    return Status::OK();
  }
  if (options_.auto_grow) {
    LatchGuard g(op_latch_);
    if (free_pages_fast_.load(std::memory_order_relaxed) < need) {
      (void)AddSpace();
    }
  }
  if (free_pages_fast_.load(std::memory_order_relaxed) >= need) {
    return Status::OK();
  }
  m_refused_->Inc();
  return Status::NoSpace(
      "volume exhausted: free pages at or below the emergency reserve (" +
      std::to_string(emergency_reserve_pages_) + ")");
}

void SegmentAllocator::set_alloc_fault_countdown(int64_t k) {
  alloc_fault_countdown_.store(k, std::memory_order_relaxed);
}

uint64_t SegmentAllocator::alloc_calls() const {
  return alloc_calls_.load(std::memory_order_relaxed);
}

StatusOr<uint64_t> SegmentAllocator::TotalFreePages() {
  LatchGuard g(op_latch_);
  uint64_t total = 0;
  for (uint32_t i = 0; i < num_spaces_; ++i) {
    EOS_ASSIGN_OR_RETURN(uint64_t f, Space(i).FreePages());
    total += f;
  }
  return total;
}

StatusOr<std::vector<SpaceReport>> SegmentAllocator::Report() {
  LatchGuard g(op_latch_);
  std::vector<SpaceReport> out;
  for (uint32_t i = 0; i < num_spaces_; ++i) {
    SpaceReport r;
    r.space = i;
    EOS_ASSIGN_OR_RETURN(r.free_counts, Space(i).Counts());
    for (uint32_t t = 0; t < r.free_counts.size(); ++t) {
      r.free_pages += uint64_t{r.free_counts[t]} << t;
      if (r.free_counts[t] > 0) r.max_free_type = static_cast<int>(t);
    }
    out.push_back(std::move(r));
  }
  return out;
}

StatusOr<FragmentationStats> SegmentAllocator::FragStats() {
  EOS_ASSIGN_OR_RETURN(std::vector<SpaceReport> spaces, Report());
  FragmentationStats out;
  std::vector<uint64_t> by_type;
  for (const SpaceReport& r : spaces) {
    if (r.free_counts.size() > by_type.size()) {
      by_type.resize(r.free_counts.size(), 0);
    }
    for (uint32_t t = 0; t < r.free_counts.size(); ++t) {
      by_type[t] += r.free_counts[t];
      out.free_segments += r.free_counts[t];
      out.free_pages += uint64_t{r.free_counts[t]} << t;
      if (r.free_counts[t] > 0) {
        out.largest_free_pages =
            std::max<uint64_t>(out.largest_free_pages, uint64_t{1} << t);
      }
    }
  }
  if (out.free_segments > 0) {
    out.mean_free_pages = static_cast<double>(out.free_pages) /
                          static_cast<double>(out.free_segments);
    double entropy = 0.0;
    for (uint64_t n : by_type) {
      if (n == 0) continue;
      double p = static_cast<double>(n) /
                 static_cast<double>(out.free_segments);
      entropy -= p * std::log2(p);
    }
    if (by_type.size() > 1) {
      out.free_entropy = entropy / std::log2(
          static_cast<double>(by_type.size()));
    }
  }
  static obs::Gauge* g_entropy =
      obs::MetricsRegistry::Default().gauge(obs::kFragFreeEntropy);
  static obs::Gauge* g_segments =
      obs::MetricsRegistry::Default().gauge(obs::kFragFreeSegments);
  static obs::Gauge* g_largest =
      obs::MetricsRegistry::Default().gauge(obs::kFragLargestFreePages);
  g_entropy->Set(static_cast<int64_t>(out.free_entropy * 1000.0));
  g_segments->Set(static_cast<int64_t>(out.free_segments));
  g_largest->Set(static_cast<int64_t>(out.largest_free_pages));
  return out;
}

StatusOr<bool> SegmentAllocator::IsAllocated(const Extent& extent) {
  if (!extent.valid()) return false;
  LatchGuard g(op_latch_);
  uint32_t space, local;
  EOS_RETURN_IF_ERROR(Locate(extent.first, &space, &local));
  uint32_t space2, local_end;
  EOS_RETURN_IF_ERROR(
      Locate(extent.first + extent.pages - 1, &space2, &local_end));
  if (space2 != space) return false;
  EOS_ASSIGN_OR_RETURN(bool ok, Space(space).RangeAllocated(local,
                                                            extent.pages));
  return ok;
}

Status SegmentAllocator::CheckInvariants() {
  LatchGuard g(op_latch_);
  for (uint32_t i = 0; i < num_spaces_; ++i) {
    EOS_RETURN_IF_ERROR(Space(i).CheckInvariants());
  }
  return Status::OK();
}

Status SegmentAllocator::WipeAndRebuild(const std::vector<Extent>& live) {
  LatchGuard g(op_latch_);
  for (uint32_t i = 0; i < num_spaces_; ++i) {
    EOS_RETURN_IF_ERROR(Space(i).Format());
  }
  uint64_t allocated = 0;
  for (const Extent& e : live) {
    if (!e.valid()) return Status::InvalidArgument("invalid live extent");
    uint32_t space, local;
    EOS_RETURN_IF_ERROR(Locate(e.first, &space, &local));
    uint32_t space_end, local_end;
    EOS_RETURN_IF_ERROR(Locate(e.first + e.pages - 1, &space_end, &local_end));
    if (space_end != space) {
      return Status::InvalidArgument("live extent spans buddy spaces");
    }
    Status s = Space(space).AllocateRange(local, e.pages);
    if (!s.ok()) {
      // An already-allocated page means two recovered trees claim the same
      // storage — surface that as corruption, not a parameter error.
      if (s.IsInvalidArgument()) {
        return Status::Corruption("live extents overlap: " + s.message());
      }
      return s;
    }
    allocated += e.pages;
  }
  for (uint32_t i = 0; i < num_spaces_; ++i) {
    EOS_RETURN_IF_ERROR(RefreshHint(i));
  }
  m_free_pages_->Set(
      static_cast<int64_t>(uint64_t{num_spaces_} * geo_.space_pages -
                           allocated));
  m_managed_pages_->Set(
      static_cast<int64_t>(uint64_t{num_spaces_} * geo_.space_pages));
  free_pages_fast_.store(
      static_cast<int64_t>(uint64_t{num_spaces_} * geo_.space_pages -
                           allocated),
      std::memory_order_relaxed);
  return Status::OK();
}

}  // namespace eos
