#ifndef EOS_BUDDY_GEOMETRY_H_
#define EOS_BUDDY_GEOMETRY_H_

#include <cstdint>

#include "common/math.h"
#include "common/status.h"

namespace eos {

// Derived sizes of a buddy segment space (Section 3, Figure 1).
//
// The directory of a space is exactly one page:
//   [magic u16][num_types u16][count u16 x (k+1)][allocation map ...]
// With page size PS the paper sets the maximum segment type
// k = log2(2 * PS), i.e. the largest segment is 2*PS pages. Each map byte
// covers 4 pages, so a space holds at most 4 * amap_capacity data pages
// (with PS = 4096: k = 13, 32 MB max segment, ~63.5 MB spaces).
struct BuddyGeometry {
  uint32_t page_size = 0;
  uint32_t max_type = 0;       // k: largest segment is 2^k pages
  uint32_t amap_capacity = 0;  // map bytes available in the directory page
  uint32_t space_pages = 0;    // data pages actually managed per space

  uint32_t dir_header_bytes() const { return 4 + 2 * (max_type + 1); }
  uint32_t max_segment_pages() const { return uint32_t{1} << max_type; }

  // Derives the geometry for `page_size`. `space_pages` = 0 means "as many
  // pages as one directory page can map".
  static StatusOr<BuddyGeometry> Make(uint32_t page_size,
                                      uint32_t space_pages = 0) {
    if (page_size < 64 || page_size > 32768) {
      return Status::InvalidArgument("page size must be in [64, 32768]");
    }
    BuddyGeometry g;
    g.page_size = page_size;
    uint32_t k = FloorLog2(page_size) + 1;  // max segment = 2*PS pages
    uint32_t header = 4 + 2 * (k + 1);
    g.amap_capacity = page_size - header;
    uint32_t max_pages = 4 * g.amap_capacity;
    if (space_pages == 0) space_pages = max_pages;
    if (space_pages < 8 || space_pages > max_pages) {
      return Status::InvalidArgument("space_pages out of range");
    }
    g.space_pages = space_pages;
    // A segment cannot be larger than its space.
    g.max_type = k < FloorLog2(space_pages) ? k : FloorLog2(space_pages);
    return g;
  }
};

}  // namespace eos

#endif  // EOS_BUDDY_GEOMETRY_H_
