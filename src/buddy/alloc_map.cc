#include "buddy/alloc_map.h"

#include <cassert>
#include <cstring>

namespace eos {

bool AllocMap::PageAllocated(uint32_t p) const {
  assert(p < npages_);
  uint8_t b = bytes_[p / 4];
  if (b == 0) {
    // Interior of a larger segment: its start byte carries the status.
    return FindSegmentContaining(p).allocated;
  }
  if (b & kStartBit) return (b & kAllocBit) != 0;
  return PageBitAllocated(p);
}

AllocMap::Segment AllocMap::FindSegmentContaining(uint32_t p) const {
  assert(p < npages_);
  uint32_t bi = p / 4;
  uint8_t b = bytes_[bi];
  if (b != 0 && !(b & kStartBit)) {
    // Per-page granularity: report the single page.
    return Segment{p, 0, PageBitAllocated(p)};
  }
  // Walk left to the first non-zero byte; it must be an MSB start byte of a
  // segment of size >= 4 whose range covers p.
  while (bytes_[bi] == 0) {
    assert(bi > 0);
    --bi;
  }
  uint8_t sb = bytes_[bi];
  assert(sb & kStartBit);
  Segment seg;
  seg.start = bi * 4;
  seg.type = sb & kTypeMask;
  seg.allocated = (sb & kAllocBit) != 0;
  assert(p >= seg.start && p < seg.start + seg.size());
  return seg;
}

uint32_t AllocMap::CanonicalFreeTypeAt(uint32_t p) const {
  uint8_t b = bytes_[p / 4];
  if (b & kStartBit) {
    assert(p % 4 == 0 && (b & kAllocBit) == 0);
    return b & kTypeMask;
  }
  assert(b != 0 && !PageBitAllocated(p));
  // In a nibble byte a canonical free segment is a single page or an
  // aligned free pair.
  if (p % 2 == 0 && p + 1 < npages_ && (p + 1) / 4 == p / 4 &&
      !PageBitAllocated(p + 1)) {
    return 1;
  }
  assert(p % 2 == 1 ? PageBitAllocated(p - 1) || (p - 1) / 4 != p / 4 : true);
  return 0;
}

bool AllocMap::IsCanonicalFree(uint32_t start, uint32_t type) const {
  if (start >= npages_ || start + (uint32_t{1} << type) > npages_) return false;
  uint8_t b = bytes_[start / 4];
  if (type >= 2) {
    return (b & kStartBit) && !(b & kAllocBit) && (b & kTypeMask) == type;
  }
  if (b == 0 || (b & kStartBit)) return false;  // interior or >= 4 segment
  if (type == 1) {
    return start % 2 == 0 && !PageBitAllocated(start) &&
           !PageBitAllocated(start + 1);
  }
  // Type 0: the page is free and is not half of a canonical free pair.
  if (PageBitAllocated(start)) return false;
  uint32_t buddy = start ^ 1u;
  if (buddy < npages_ && buddy / 4 == start / 4 && !PageBitAllocated(buddy)) {
    return false;  // part of a free pair, canonical form is type 1
  }
  return true;
}

bool AllocMap::IsFreeForCoalesce(uint32_t start, uint32_t type) const {
  if (start >= npages_ || start + (uint32_t{1} << type) > npages_) {
    return false;
  }
  if (type >= 2) return IsCanonicalFree(start, type);
  // type < 2: the buddy shares the quad of the chunk just freed, so its
  // byte is in per-page mode — possibly transiently all-zero when every
  // page of the quad is free (the merge being decided here repairs that
  // state into the canonical whole-byte encoding).
  uint8_t b = bytes_[start / 4];
  if (b & kStartBit) return false;
  if (PageBitAllocated(start)) return false;
  return type == 0 || !PageBitAllocated(start + 1);
}

uint32_t AllocMap::StepSizeAt(uint32_t p) const {
  uint8_t b = bytes_[p / 4];
  if (b & kStartBit) {
    assert(p % 4 == 0);
    return uint32_t{1} << (b & kTypeMask);
  }
  assert(b != 0);  // the scan never lands inside a zero (interior) byte
  if (PageBitAllocated(p)) return 1;
  return uint32_t{1} << CanonicalFreeTypeAt(p);
}

void AllocMap::SetPageBits(uint32_t start, uint32_t count, bool allocated) {
  for (uint32_t p = start; p < start + count; ++p) {
    uint32_t bi = p / 4;
    if (bytes_[bi] & kStartBit) {
      // The byte is being converted from a whole-byte segment encoding to
      // per-page bits; the caller rewrites every page it covers.
      bytes_[bi] = 0;
    }
    uint8_t mask = static_cast<uint8_t>(1u << (3 - (p % 4)));
    if (allocated) {
      bytes_[bi] |= mask;
    } else {
      bytes_[bi] &= static_cast<uint8_t>(~mask);
    }
  }
}

void AllocMap::WriteAllocated(uint32_t start, uint32_t type) {
  uint32_t size = uint32_t{1} << type;
  assert(start % size == 0 && start + size <= npages_);
  if (type < 2) {
    SetPageBits(start, size, /*allocated=*/true);
    return;
  }
  uint32_t bi = start / 4;
  bytes_[bi] = static_cast<uint8_t>(kStartBit | kAllocBit | type);
  std::memset(&bytes_[bi + 1], 0, size / 4 - 1);
}

void AllocMap::WriteFree(uint32_t start, uint32_t type) {
  uint32_t size = uint32_t{1} << type;
  assert(start % size == 0 && start + size <= npages_);
  if (type < 2) {
    SetPageBits(start, size, /*allocated=*/false);
    return;
  }
  uint32_t bi = start / 4;
  bytes_[bi] = static_cast<uint8_t>(kStartBit | type);
  std::memset(&bytes_[bi + 1], 0, size / 4 - 1);
}

uint32_t AllocMap::FindFree(uint32_t type) const {
  uint32_t want = uint32_t{1} << type;
  uint32_t s = 0;
  while (s < npages_) {
    uint8_t b = bytes_[s / 4];
    bool free;
    if (b & kStartBit) {
      free = !(b & kAllocBit);
    } else {
      assert(b != 0);
      free = !PageBitAllocated(s);
    }
    uint32_t m = StepSizeAt(s);
    if (free && m == want) return s;
    s += (m > want) ? m : want;
  }
  return kNone;
}

std::vector<uint32_t> AllocMap::CountFreeSegments() const {
  std::vector<uint32_t> counts(max_type_ + 1, 0);
  uint32_t p = 0;
  while (p < npages_) {
    uint8_t b = bytes_[p / 4];
    if (b & kStartBit) {
      uint32_t type = b & kTypeMask;
      if (!(b & kAllocBit)) ++counts[type];
      p += uint32_t{1} << type;
    } else if (b == 0) {
      assert(false && "interior byte reached while walking segment starts");
      ++p;
    } else if (PageBitAllocated(p)) {
      ++p;
    } else {
      uint32_t type = CanonicalFreeTypeAt(p);
      ++counts[type];
      p += uint32_t{1} << type;
    }
  }
  return counts;
}

}  // namespace eos
