#include "buddy/buddy_space.h"

#include <cassert>
#include <cstring>

#include "common/bytes.h"
#include "common/math.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"

namespace eos {

namespace {

obs::Counter* SplitCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default().counter(obs::kBuddySplit);
  return c;
}

obs::Counter* CoalesceCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default().counter(obs::kBuddyCoalesce);
  return c;
}

// Splits [lo, hi) into maximal buddy-aligned power-of-two chunks, capped at
// 2^max_type, and invokes fn(start, type) for each in address order.
template <typename Fn>
void ForEachAlignedChunk(uint32_t lo, uint32_t hi, uint32_t max_type, Fn fn) {
  while (lo < hi) {
    uint32_t align_t =
        lo == 0 ? max_type : FloorLog2(LargestAlignedSize(lo));
    uint32_t fit_t = FloorLog2(hi - lo);
    uint32_t t = align_t < fit_t ? align_t : fit_t;
    if (t > max_type) t = max_type;
    fn(lo, t);
    lo += uint32_t{1} << t;
  }
}

}  // namespace

uint16_t BuddySpace::GetCount(PageHandle& h, uint32_t type) const {
  return DecodeU16(h.data() + 4 + 2 * type);
}

void BuddySpace::SetCount(PageHandle& h, uint32_t type, uint16_t v) const {
  EncodeU16(h.data() + 4 + 2 * type, v);
}

AllocMap BuddySpace::Map(PageHandle& h) const {
  return AllocMap(h.data() + geo_.dir_header_bytes(), geo_.space_pages,
                  geo_.max_type);
}

Status BuddySpace::CheckMagic(PageHandle& h) const {
  if (DecodeU16(h.data()) != kMagic) {
    return Status::Corruption("buddy directory magic mismatch at page " +
                              std::to_string(dir_page_));
  }
  return Status::OK();
}

Status BuddySpace::Format() {
  EOS_ASSIGN_OR_RETURN(PageHandle h, pager_->Zeroed(dir_page_));
  EncodeU16(h.data(), kMagic);
  EncodeU16(h.data() + 2, static_cast<uint16_t>(geo_.max_type + 1));
  AllocMap map = Map(h);
  // Phantom pages in the last partial map byte stay allocated forever.
  uint32_t padded = CeilDiv(geo_.space_pages, 4) * 4;
  for (uint32_t p = geo_.space_pages; p < padded; ++p) {
    uint8_t* b = h.data() + geo_.dir_header_bytes() + p / 4;
    *b |= static_cast<uint8_t>(1u << (3 - (p % 4)));
  }
  ForEachAlignedChunk(0, geo_.space_pages, geo_.max_type,
                      [&](uint32_t start, uint32_t type) {
                        map.WriteFree(start, type);
                        SetCount(h, type, GetCount(h, type) + 1);
                      });
  h.MarkDirty();
  return Status::OK();
}

StatusOr<uint32_t> BuddySpace::Allocate(uint32_t npages) {
  if (npages == 0 || npages > geo_.max_segment_pages()) {
    return Status::InvalidArgument("segment size " + std::to_string(npages) +
                                   " not in [1, 2^k]");
  }
  EOS_ASSIGN_OR_RETURN(PageHandle h, pager_->Fetch(dir_page_));
  EOS_RETURN_IF_ERROR(CheckMagic(h));
  uint32_t t_need = CeilLog2(npages);
  // Smallest j >= t_need with a free segment available.
  uint32_t j = t_need;
  while (j <= geo_.max_type && GetCount(h, j) == 0) ++j;
  if (j > geo_.max_type) {
    return Status::NoSpace("no free segment of " + std::to_string(npages) +
                           " pages in space");
  }
  AllocMap map = Map(h);
  uint32_t s = map.FindFree(j);
  if (s == AllocMap::kNone) {
    return Status::Corruption("count[" + std::to_string(j) +
                              "] > 0 but no free segment found in map");
  }
  SetCount(h, j, GetCount(h, j) - 1);
  // Allocated prefix: binary decomposition of npages, largest chunk first
  // (Figure 4.b). Starting from a 2^j-aligned address keeps every chunk
  // aligned to its own size.
  uint32_t pos = s;
  for (int t = static_cast<int>(geo_.max_type); t >= 0; --t) {
    if (npages & (uint32_t{1} << t)) {
      map.WriteAllocated(pos, static_cast<uint32_t>(t));
      pos += uint32_t{1} << t;
    }
  }
  // Free remainder: binary decomposition in reverse order (smallest chunk
  // first), directly after the allocated prefix. Each remainder chunk is a
  // split of the 2^j segment the request was carved from.
  uint32_t rem = (uint32_t{1} << j) - npages;
  for (uint32_t t = 0; t <= geo_.max_type && rem != 0; ++t) {
    if (rem & (uint32_t{1} << t)) {
      map.WriteFree(pos, t);
      SetCount(h, t, GetCount(h, t) + 1);
      SplitCounter()->Inc();
      pos += uint32_t{1} << t;
      rem &= ~(uint32_t{1} << t);
    }
  }
  h.MarkDirty();
  return s;
}

void BuddySpace::WriteAllocatedRange(PageHandle& h, uint32_t lo, uint32_t hi) {
  AllocMap map = Map(h);
  ForEachAlignedChunk(lo, hi, geo_.max_type,
                      [&](uint32_t start, uint32_t type) {
                        map.WriteAllocated(start, type);
                      });
}

void BuddySpace::FreeChunkAndCoalesce(PageHandle& h, uint32_t chunk,
                                      uint32_t type) {
  AllocMap map = Map(h);
  map.WriteFree(chunk, type);
  SetCount(h, type, GetCount(h, type) + 1);
  // Iterative coalescing of Section 3.2: the buddy is the XOR of the
  // segment address with its size.
  while (type < geo_.max_type) {
    uint32_t buddy = chunk ^ (uint32_t{1} << type);
    if (!map.IsFreeForCoalesce(buddy, type)) break;
    CoalesceCounter()->Inc();
    SetCount(h, type, GetCount(h, type) - 2);
    chunk = chunk < buddy ? chunk : buddy;
    ++type;
    map.WriteFree(chunk, type);
    SetCount(h, type, GetCount(h, type) + 1);
  }
}

Status BuddySpace::Free(uint32_t start, uint32_t npages) {
  if (npages == 0 || start + npages > geo_.space_pages) {
    return Status::InvalidArgument("free range out of space bounds");
  }
  EOS_ASSIGN_OR_RETURN(PageHandle h, pager_->Fetch(dir_page_));
  EOS_RETURN_IF_ERROR(CheckMagic(h));
  AllocMap map = Map(h);
  uint32_t end = start + npages;

  // Collect the allocated segments overlapping the range up front (their
  // encodings are destroyed as we rewrite).
  struct Overlap {
    uint32_t seg_start;
    uint32_t seg_end;
  };
  std::vector<Overlap> overlaps;
  uint32_t p = start;
  while (p < end) {
    AllocMap::Segment seg = map.FindSegmentContaining(p);
    if (!seg.allocated) {
      return Status::InvalidArgument(
          "freeing page " + std::to_string(p) +
          " that is already free (double free?)");
    }
    overlaps.push_back({seg.start, seg.start + seg.size()});
    p = seg.start + seg.size();
  }

  for (const Overlap& ov : overlaps) {
    uint32_t freed_lo = ov.seg_start > start ? ov.seg_start : start;
    uint32_t freed_hi = ov.seg_end < end ? ov.seg_end : end;
    // Re-encode the surviving parts of a partially freed segment as smaller
    // allocated segments (the "free any portion" feature of Section 3.2).
    if (ov.seg_start < freed_lo) WriteAllocatedRange(h, ov.seg_start, freed_lo);
    if (freed_hi < ov.seg_end) WriteAllocatedRange(h, freed_hi, ov.seg_end);
    ForEachAlignedChunk(freed_lo, freed_hi, geo_.max_type,
                        [&](uint32_t c, uint32_t t) {
                          FreeChunkAndCoalesce(h, c, t);
                        });
  }
  h.MarkDirty();
  return Status::OK();
}

Status BuddySpace::AllocateRange(uint32_t start, uint32_t npages) {
  if (npages == 0 || start + npages > geo_.space_pages) {
    return Status::InvalidArgument("allocate range out of space bounds");
  }
  EOS_ASSIGN_OR_RETURN(PageHandle h, pager_->Fetch(dir_page_));
  EOS_RETURN_IF_ERROR(CheckMagic(h));
  AllocMap map = Map(h);
  uint32_t end = start + npages;

  // Walk segment starts from the beginning of the space to find the
  // canonical free segments overlapping the range (collected up front —
  // their encodings are destroyed as we rewrite).
  struct Overlap {
    uint32_t seg_start;
    uint32_t seg_end;
    uint32_t type;
  };
  std::vector<Overlap> overlaps;
  uint32_t p = 0;
  while (p < geo_.space_pages && p < end) {
    uint32_t step = map.StepSizeAt(p);
    uint32_t seg_end = p + step;
    if (seg_end > start) {
      if (map.PageAllocated(p)) {
        return Status::InvalidArgument(
            "allocating over page " + std::to_string(p < start ? start : p) +
            " that is already allocated");
      }
      overlaps.push_back({p, seg_end, map.CanonicalFreeTypeAt(p)});
    }
    p = seg_end;
  }

  for (const Overlap& ov : overlaps) {
    uint32_t lo = ov.seg_start > start ? ov.seg_start : start;
    uint32_t hi = ov.seg_end < end ? ov.seg_end : end;
    SetCount(h, ov.type, GetCount(h, ov.type) - 1);
    // The allocated middle is written before the outside parts are freed
    // so the coalescing reads below only ever see valid encodings (same
    // ordering as Free).
    WriteAllocatedRange(h, lo, hi);
    if (ov.seg_start < lo) {
      ForEachAlignedChunk(ov.seg_start, lo, geo_.max_type,
                          [&](uint32_t c, uint32_t t) {
                            FreeChunkAndCoalesce(h, c, t);
                          });
    }
    if (hi < ov.seg_end) {
      ForEachAlignedChunk(hi, ov.seg_end, geo_.max_type,
                          [&](uint32_t c, uint32_t t) {
                            FreeChunkAndCoalesce(h, c, t);
                          });
    }
  }
  h.MarkDirty();
  return Status::OK();
}

StatusOr<int> BuddySpace::MaxFreeType() {
  EOS_ASSIGN_OR_RETURN(PageHandle h, pager_->Fetch(dir_page_));
  EOS_RETURN_IF_ERROR(CheckMagic(h));
  for (int t = static_cast<int>(geo_.max_type); t >= 0; --t) {
    if (GetCount(h, static_cast<uint32_t>(t)) > 0) return t;
  }
  return -1;
}

StatusOr<uint64_t> BuddySpace::FreePages() {
  EOS_ASSIGN_OR_RETURN(PageHandle h, pager_->Fetch(dir_page_));
  EOS_RETURN_IF_ERROR(CheckMagic(h));
  uint64_t total = 0;
  for (uint32_t t = 0; t <= geo_.max_type; ++t) {
    total += uint64_t{GetCount(h, t)} << t;
  }
  return total;
}

StatusOr<std::vector<uint32_t>> BuddySpace::Counts() {
  EOS_ASSIGN_OR_RETURN(PageHandle h, pager_->Fetch(dir_page_));
  EOS_RETURN_IF_ERROR(CheckMagic(h));
  std::vector<uint32_t> counts(geo_.max_type + 1);
  for (uint32_t t = 0; t <= geo_.max_type; ++t) counts[t] = GetCount(h, t);
  return counts;
}

StatusOr<bool> BuddySpace::RangeAllocated(uint32_t start, uint32_t npages) {
  if (npages == 0 || start + npages > geo_.space_pages) return false;
  EOS_ASSIGN_OR_RETURN(PageHandle h, pager_->Fetch(dir_page_));
  EOS_RETURN_IF_ERROR(CheckMagic(h));
  AllocMap map = Map(h);
  for (uint32_t p = start; p < start + npages; ++p) {
    if (!map.PageAllocated(p)) return false;
  }
  return true;
}

Status BuddySpace::CheckInvariants() {
  EOS_ASSIGN_OR_RETURN(PageHandle h, pager_->Fetch(dir_page_));
  EOS_RETURN_IF_ERROR(CheckMagic(h));
  AllocMap map = Map(h);
  std::vector<uint32_t> walked = map.CountFreeSegments();
  for (uint32_t t = 0; t <= geo_.max_type; ++t) {
    if (walked[t] != GetCount(h, t)) {
      return Status::Corruption(
          "count[" + std::to_string(t) + "] = " +
          std::to_string(GetCount(h, t)) + " but map holds " +
          std::to_string(walked[t]) + " free segments of that type");
    }
  }
  // Canonical form: no free segment may have a free buddy of its own type.
  uint32_t p = 0;
  while (p < geo_.space_pages) {
    uint32_t step = map.StepSizeAt(p);
    if (!map.PageAllocated(p)) {
      uint32_t t = map.CanonicalFreeTypeAt(p);
      uint32_t buddy = p ^ (uint32_t{1} << t);
      if (t < geo_.max_type && map.IsCanonicalFree(buddy, t)) {
        return Status::Corruption("uncoalesced free buddies at page " +
                                  std::to_string(p));
      }
    }
    p += step;
  }
  return Status::OK();
}

}  // namespace eos
