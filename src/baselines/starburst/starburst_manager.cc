#include "baselines/starburst/starburst_manager.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "common/math.h"

namespace eos {

StarburstManager::StarburstManager(SegmentAllocator* allocator,
                                   PageDevice* device,
                                   uint32_t max_segment_pages)
    : allocator_(allocator), device_(device) {
  uint32_t buddy_max = allocator->geometry().max_segment_pages();
  max_segment_pages_ = max_segment_pages == 0
                           ? buddy_max
                           : std::min(max_segment_pages, buddy_max);
}

uint32_t StarburstManager::LeafPages(uint64_t bytes) const {
  return static_cast<uint32_t>(CeilDiv(bytes, page_size()));
}

size_t StarburstManager::FindSegment(const StarburstDescriptor& d,
                                     uint64_t offset,
                                     uint64_t* local) const {
  uint64_t cum = 0;
  for (size_t i = 0; i < d.segments.size(); ++i) {
    if (offset < cum + d.segments[i].count) {
      *local = offset - cum;
      return i;
    }
    cum += d.segments[i].count;
  }
  assert(false && "offset beyond long field size");
  return d.segments.size();
}

Status StarburstManager::AppendSegments(StarburstDescriptor* d,
                                        ByteView data, uint32_t prev_pages,
                                        uint64_t size_hint) {
  const uint32_t ps = page_size();
  uint64_t pos = 0;
  uint32_t next = prev_pages == 0 ? 1 : std::min(prev_pages * 2,
                                                 max_segment_pages_);
  while (pos < data.size()) {
    uint64_t remaining = data.size() - pos;
    uint32_t pages;
    if (size_hint > 0) {
      // Size known in advance: maximal segments, last one exact.
      pages = static_cast<uint32_t>(
          std::min<uint64_t>(CeilDiv(remaining, ps), max_segment_pages_));
    } else {
      pages = next;
      next = std::min(next * 2, max_segment_pages_);
      // The final segment is trimmed: never allocate beyond what is left.
      pages = static_cast<uint32_t>(
          std::min<uint64_t>(pages, CeilDiv(remaining, ps)));
    }
    uint64_t chunk = std::min<uint64_t>(remaining, uint64_t{pages} * ps);
    EOS_ASSIGN_OR_RETURN(Extent e, allocator_->Allocate(LeafPages(chunk)));
    uint32_t used = LeafPages(chunk);
    if (chunk % ps == 0) {
      EOS_RETURN_IF_ERROR(device_->WritePages(e.first, used,
                                              data.data() + pos));
    } else {
      Bytes buf(size_t{used} * ps, 0);
      std::memcpy(buf.data(), data.data() + pos, chunk);
      EOS_RETURN_IF_ERROR(device_->WritePages(e.first, used, buf.data()));
    }
    d->segments.push_back(LobEntry{chunk, e.first});
    pos += chunk;
  }
  return Status::OK();
}

StatusOr<StarburstDescriptor> StarburstManager::CreateFrom(ByteView data) {
  StarburstDescriptor d;
  EOS_RETURN_IF_ERROR(AppendSegments(&d, data, 0, data.size()));
  return d;
}

Status StarburstManager::Append(StarburstDescriptor* d, ByteView data) {
  if (data.empty()) return Status::OK();
  const uint32_t ps = page_size();
  uint32_t prev_pages =
      d->segments.empty() ? 0 : LeafPages(d->segments.back().count);
  if (!d->segments.empty() && d->segments.back().count % ps != 0) {
    // Absorb the partial tail page into the new segment run.
    LobEntry& last = d->segments.back();
    uint64_t lm = last.count % ps;
    Bytes buf(lm + data.size());
    uint64_t tail_page = last.page + LeafPages(last.count) - 1;
    Bytes page(ps);
    EOS_RETURN_IF_ERROR(device_->ReadPages(tail_page, 1, page.data()));
    std::memcpy(buf.data(), page.data(), lm);
    std::memcpy(buf.data() + lm, data.data(), data.size());
    EOS_RETURN_IF_ERROR(allocator_->Free(Extent{tail_page, 1}));
    last.count -= lm;
    if (last.count == 0) d->segments.pop_back();
    return AppendSegments(d, buf, prev_pages, 0);
  }
  return AppendSegments(d, data, prev_pages, 0);
}

Status StarburstManager::Read(const StarburstDescriptor& d, uint64_t offset,
                              uint64_t n, Bytes* out) {
  if (offset > d.size()) {
    return Status::OutOfRange("read offset beyond long field size");
  }
  n = std::min(n, d.size() - offset);
  out->resize(n);
  if (n == 0) return Status::OK();
  const uint32_t ps = page_size();
  uint64_t local = 0;
  size_t i = FindSegment(d, offset, &local);
  uint64_t done = 0;
  while (done < n) {
    const LobEntry& seg = d.segments[i];
    uint64_t chunk = std::min(n - done, seg.count - local);
    uint64_t p0 = local / ps;
    uint64_t p1 = (local + chunk - 1) / ps;
    Bytes buf((p1 - p0 + 1) * ps);
    EOS_RETURN_IF_ERROR(device_->ReadPages(
        seg.page + p0, static_cast<uint32_t>(p1 - p0 + 1), buf.data()));
    std::memcpy(out->data() + done, buf.data() + (local - p0 * ps), chunk);
    done += chunk;
    local = 0;
    ++i;
  }
  return Status::OK();
}

StatusOr<Bytes> StarburstManager::ReadAll(const StarburstDescriptor& d) {
  Bytes out;
  EOS_RETURN_IF_ERROR(Read(d, 0, d.size(), &out));
  return out;
}

Status StarburstManager::Replace(StarburstDescriptor* d, uint64_t offset,
                                 ByteView data) {
  if (offset + data.size() > d->size()) {
    return Status::OutOfRange("replace range beyond long field size");
  }
  if (data.empty()) return Status::OK();
  const uint32_t ps = page_size();
  uint64_t local = 0;
  size_t i = FindSegment(*d, offset, &local);
  uint64_t done = 0;
  while (done < data.size()) {
    const LobEntry& seg = d->segments[i];
    uint64_t chunk = std::min<uint64_t>(data.size() - done,
                                        seg.count - local);
    uint64_t p0 = local / ps;
    uint64_t p1 = (local + chunk - 1) / ps;
    uint32_t np = static_cast<uint32_t>(p1 - p0 + 1);
    Bytes buf(size_t{np} * ps);
    EOS_RETURN_IF_ERROR(device_->ReadPages(seg.page + p0, np, buf.data()));
    std::memcpy(buf.data() + (local - p0 * ps), data.data() + done, chunk);
    EOS_RETURN_IF_ERROR(device_->WritePages(seg.page + p0, np, buf.data()));
    done += chunk;
    local = 0;
    ++i;
  }
  return Status::OK();
}

Status StarburstManager::Insert(StarburstDescriptor* d, uint64_t offset,
                                ByteView data) {
  if (offset > d->size()) {
    return Status::OutOfRange("insert offset beyond long field size");
  }
  if (data.empty()) return Status::OK();
  if (offset == d->size()) return Append(d, data);
  // Copy every segment from the one containing `offset` to the end into
  // new segments (the paper's description of Starburst's behaviour).
  uint64_t local = 0;
  size_t i = FindSegment(*d, offset, &local);
  uint64_t seg_start = offset - local;
  Bytes suffix;
  EOS_RETURN_IF_ERROR(Read(*d, seg_start, d->size() - seg_start, &suffix));
  uint32_t prev_pages = i == 0 ? 0 : LeafPages(d->segments[i - 1].count);
  for (size_t j = i; j < d->segments.size(); ++j) {
    const LobEntry& seg = d->segments[j];
    EOS_RETURN_IF_ERROR(
        allocator_->Free(Extent{seg.page, LeafPages(seg.count)}));
  }
  d->segments.resize(i);
  Bytes rebuilt;
  rebuilt.reserve(suffix.size() + data.size());
  rebuilt.insert(rebuilt.end(), suffix.begin(), suffix.begin() + local);
  rebuilt.insert(rebuilt.end(), data.data(), data.data() + data.size());
  rebuilt.insert(rebuilt.end(), suffix.begin() + local, suffix.end());
  return AppendSegments(d, rebuilt, prev_pages, rebuilt.size());
}

Status StarburstManager::Delete(StarburstDescriptor* d, uint64_t offset,
                                uint64_t n) {
  if (offset > d->size()) {
    return Status::OutOfRange("delete offset beyond long field size");
  }
  n = std::min(n, d->size() - offset);
  if (n == 0) return Status::OK();
  if (offset == 0 && n == d->size()) return Destroy(d);
  uint64_t local = 0;
  size_t i = FindSegment(*d, offset, &local);
  uint64_t seg_start = offset - local;
  Bytes suffix;
  EOS_RETURN_IF_ERROR(Read(*d, seg_start, d->size() - seg_start, &suffix));
  uint32_t prev_pages = i == 0 ? 0 : LeafPages(d->segments[i - 1].count);
  for (size_t j = i; j < d->segments.size(); ++j) {
    const LobEntry& seg = d->segments[j];
    EOS_RETURN_IF_ERROR(
        allocator_->Free(Extent{seg.page, LeafPages(seg.count)}));
  }
  d->segments.resize(i);
  suffix.erase(suffix.begin() + local, suffix.begin() + local + n);
  return AppendSegments(d, suffix, prev_pages, suffix.size());
}

Status StarburstManager::Destroy(StarburstDescriptor* d) {
  for (const LobEntry& seg : d->segments) {
    EOS_RETURN_IF_ERROR(
        allocator_->Free(Extent{seg.page, LeafPages(seg.count)}));
  }
  d->segments.clear();
  return Status::OK();
}

StatusOr<LobStats> StarburstManager::Stats(const StarburstDescriptor& d) {
  LobStats stats;
  stats.size_bytes = d.size();
  stats.depth = 0;
  for (const LobEntry& seg : d.segments) {
    uint64_t pages = LeafPages(seg.count);
    ++stats.num_segments;
    stats.leaf_pages += pages;
    stats.min_segment_pages = stats.num_segments == 1
                                  ? pages
                                  : std::min(stats.min_segment_pages, pages);
    stats.max_segment_pages = std::max(stats.max_segment_pages, pages);
  }
  if (stats.num_segments > 0) {
    stats.avg_segment_pages =
        static_cast<double>(stats.leaf_pages) / stats.num_segments;
  }
  if (stats.leaf_pages > 0) {
    stats.leaf_utilization =
        static_cast<double>(stats.size_bytes) /
        (static_cast<double>(stats.leaf_pages) * page_size());
    stats.total_utilization = stats.leaf_utilization;
  }
  return stats;
}

}  // namespace eos
