#ifndef EOS_BASELINES_STARBURST_STARBURST_MANAGER_H_
#define EOS_BASELINES_STARBURST_STARBURST_MANAGER_H_

#include <cstdint>
#include <vector>

#include "buddy/segment_allocator.h"
#include "common/bytes.h"
#include "common/status.h"
#include "lob/lob_manager.h"
#include "lob/node.h"

namespace eos {

// Clean-room reimplementation of the Starburst long field manager
// [Lehm89], the other design EOS is evaluated against (Section 2).
//
// The long field descriptor is a flat array of segment pointers. Segments
// come from a binary buddy system; when the eventual size is unknown they
// double until the maximum and the last one is trimmed. Reads and appends
// are excellent; but Starburst "does not gracefully handle byte inserts
// and deletes": any length-changing update at offset B copies every
// segment from the one containing B to the end into new segments — the
// cost bench E10 measures growing with the bytes right of the edit.
struct StarburstDescriptor {
  // Each entry: byte count and first page of one segment, in order.
  // (The real descriptor stores only first/last sizes plus pointers, the
  // intermediate sizes being implied by the doubling pattern; keeping
  // explicit counts changes nothing measurable.)
  std::vector<LobEntry> segments;

  uint64_t size() const {
    uint64_t t = 0;
    for (const LobEntry& e : segments) t += e.count;
    return t;
  }
  bool empty() const { return segments.empty(); }

  // Wire format: [nsegments u32][count u64, page u64]...
  Bytes Serialize() const {
    Bytes out(4 + segments.size() * 16);
    EncodeU32(out.data(), static_cast<uint32_t>(segments.size()));
    uint8_t* p = out.data() + 4;
    for (const LobEntry& e : segments) {
      EncodeU64(p, e.count);
      EncodeU64(p + 8, e.page);
      p += 16;
    }
    return out;
  }

  static StatusOr<StarburstDescriptor> Deserialize(ByteView bytes) {
    if (bytes.size() < 4) {
      return Status::Corruption("long field descriptor too short");
    }
    uint32_t n = DecodeU32(bytes.data());
    if (bytes.size() != 4 + uint64_t{n} * 16) {
      return Status::Corruption("long field descriptor size mismatch");
    }
    StarburstDescriptor d;
    d.segments.reserve(n);
    const uint8_t* p = bytes.data() + 4;
    for (uint32_t i = 0; i < n; ++i) {
      d.segments.push_back(LobEntry{DecodeU64(p), DecodeU64(p + 8)});
      p += 16;
    }
    return d;
  }
};

class StarburstManager {
 public:
  StarburstManager(SegmentAllocator* allocator, PageDevice* device,
                   uint32_t max_segment_pages = 0);

  StarburstDescriptor CreateEmpty() const { return StarburstDescriptor{}; }
  StatusOr<StarburstDescriptor> CreateFrom(ByteView data);

  // Appends, continuing the doubling growth pattern; the last segment is
  // trimmed afterwards (so repeated appends re-extend it by copying its
  // partial page into the next segment — like EOS, appends never
  // overwrite stored pages here, keeping the comparison apples-to-apples).
  Status Append(StarburstDescriptor* d, ByteView data);

  Status Read(const StarburstDescriptor& d, uint64_t offset, uint64_t n,
              Bytes* out);
  StatusOr<Bytes> ReadAll(const StarburstDescriptor& d);

  Status Replace(StarburstDescriptor* d, uint64_t offset, ByteView data);

  // Length-changing updates: rewrite everything from the affected segment
  // to the end (the paper's stated Starburst behaviour).
  Status Insert(StarburstDescriptor* d, uint64_t offset, ByteView data);
  Status Delete(StarburstDescriptor* d, uint64_t offset, uint64_t n);

  Status Destroy(StarburstDescriptor* d);

  StatusOr<LobStats> Stats(const StarburstDescriptor& d);

  uint32_t page_size() const { return allocator_->geometry().page_size; }

 private:
  uint32_t LeafPages(uint64_t bytes) const;

  // Locates the segment containing `offset`; returns its index and the
  // offset local to it.
  size_t FindSegment(const StarburstDescriptor& d, uint64_t offset,
                     uint64_t* local) const;

  // Appends `data` as segments following the doubling pattern continued
  // from `prev_pages`, trimming the last.
  Status AppendSegments(StarburstDescriptor* d, ByteView data,
                        uint32_t prev_pages, uint64_t size_hint);

  SegmentAllocator* allocator_;
  PageDevice* device_;
  uint32_t max_segment_pages_;
};

}  // namespace eos

#endif  // EOS_BASELINES_STARBURST_STARBURST_MANAGER_H_
