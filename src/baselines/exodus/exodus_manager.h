#ifndef EOS_BASELINES_EXODUS_EXODUS_MANAGER_H_
#define EOS_BASELINES_EXODUS_EXODUS_MANAGER_H_

#include <cstdint>
#include <vector>

#include "buddy/segment_allocator.h"
#include "common/bytes.h"
#include "common/status.h"
#include "io/pager.h"
#include "lob/descriptor.h"
#include "lob/lob_manager.h"
#include "lob/node.h"

namespace eos {

// Clean-room reimplementation of the Exodus large object manager
// [Care86], the design EOS borrows its positional tree from and is
// evaluated against (Section 2).
//
// Differences from EOS, faithfully reproduced:
//  * Leaf data pages are FIXED SIZE (leaf_pages blocks each, configurable
//    per file) and may be anywhere from half full to full. A large leaf
//    size gives fast scans but wastes space at partially full leaves; a
//    small one stores tightly but scatters the object over the disk — the
//    dilemma Section 2 describes and bench E10 measures.
//  * Updates rewrite the affected leaf in place; inserts split a leaf into
//    balanced halves when it overflows; deletes merge boundary leaves when
//    their remains fit into one.
//  * Leaves are allocated individually from the buddy system, so logically
//    adjacent leaves are generally not physically adjacent.
struct ExodusConfig {
  // Disk blocks per leaf data page ("clients can set the size of data
  // pages of all large objects within a file", Section 2).
  uint32_t leaf_pages = 1;
  uint32_t max_root_bytes = 0;  // 0 = one page
};

class ExodusManager {
 public:
  ExodusManager(Pager* pager, SegmentAllocator* allocator,
                const ExodusConfig& config);

  LobDescriptor CreateEmpty() const { return LobDescriptor{}; }
  StatusOr<LobDescriptor> CreateFrom(ByteView data);

  Status Append(LobDescriptor* d, ByteView data);
  Status Read(const LobDescriptor& d, uint64_t offset, uint64_t n,
              Bytes* out);
  StatusOr<Bytes> ReadAll(const LobDescriptor& d);
  Status Replace(LobDescriptor* d, uint64_t offset, ByteView data);
  Status Insert(LobDescriptor* d, uint64_t offset, ByteView data);
  Status Delete(LobDescriptor* d, uint64_t offset, uint64_t n);
  Status Destroy(LobDescriptor* d);

  StatusOr<LobStats> Stats(const LobDescriptor& d);
  Status CheckInvariants(const LobDescriptor& d);

  uint32_t page_size() const { return store_.page_size(); }
  uint64_t leaf_capacity() const {
    return uint64_t{config_.leaf_pages} * page_size();
  }
  PageDevice* device() { return store_.pager()->device(); }
  SegmentAllocator* allocator() { return store_.allocator(); }

 private:
  struct PathLevel {
    PageId page = kInvalidPage;
    LobNode node;
    int child_idx = -1;
  };

  Status DescendToLeaf(const LobDescriptor& d, uint64_t offset,
                       std::vector<PathLevel>* path, LobEntry* leaf,
                       uint64_t* local) const;
  Status ReplaceInPath(LobDescriptor* d, std::vector<PathLevel>* path,
                       std::vector<LobEntry> repl);
  StatusOr<std::vector<LobEntry>> WriteNodeMaybeSplit(PageId orig_page,
                                                      LobNode&& node);
  Status FitRoot(LobDescriptor* d);
  Status CollapseRoot(LobDescriptor* d);

  StatusOr<Bytes> ReadLeaf(const LobEntry& leaf);
  Status WriteLeaf(PageId page, ByteView bytes);
  StatusOr<PageId> NewLeaf(ByteView bytes);
  Status FreeLeaf(PageId page);

  // Writes `bytes` into one or more balanced leaves, each at least half
  // full where possible.
  StatusOr<std::vector<LobEntry>> WriteLeaves(ByteView bytes,
                                              PageId reuse_page);

  Status FreeSubtree(const LobEntry& entry, uint16_t level);

  struct LeafSubst;
  Status FreeSubtreeForDelete(const LobEntry& entry, uint16_t level,
                              const LeafSubst& subst);
  StatusOr<LobNode> DeleteInNode(LobNode node, uint64_t lo, uint64_t hi,
                                 const LeafSubst& subst);

  Status WalkStats(const LobEntry& entry, uint16_t level, LobStats* stats);
  Status WalkCheck(const LobEntry& entry, uint16_t level);

  ExodusConfig config_;
  NodeStore store_;
  uint32_t root_capacity_;
};

}  // namespace eos

#endif  // EOS_BASELINES_EXODUS_EXODUS_MANAGER_H_
