#include "baselines/exodus/exodus_manager.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "common/math.h"

namespace eos {

ExodusManager::ExodusManager(Pager* pager, SegmentAllocator* allocator,
                             const ExodusConfig& config)
    : config_(config),
      store_(pager, allocator, allocator->geometry().page_size) {
  if (config_.leaf_pages == 0) config_.leaf_pages = 1;
  uint32_t root_bytes =
      config.max_root_bytes == 0 ? page_size() : config.max_root_bytes;
  root_capacity_ = std::max<uint32_t>(
      2, std::min(LobDescriptor::MaxEntriesFor(root_bytes),
                  NodeFormat::Capacity(page_size())));
}

// ----- leaf I/O --------------------------------------------------------------

StatusOr<Bytes> ExodusManager::ReadLeaf(const LobEntry& leaf) {
  // A leaf always occupies leaf_pages blocks; only ceil(count/PS) carry
  // data, and those are the ones transferred.
  uint32_t used = static_cast<uint32_t>(CeilDiv(leaf.count, page_size()));
  Bytes buf(size_t{used} * page_size());
  EOS_RETURN_IF_ERROR(device()->ReadPages(leaf.page, used, buf.data()));
  buf.resize(leaf.count);
  return buf;
}

Status ExodusManager::WriteLeaf(PageId page, ByteView bytes) {
  assert(bytes.size() <= leaf_capacity());
  uint32_t used = static_cast<uint32_t>(CeilDiv(bytes.size(), page_size()));
  Bytes buf(size_t{used} * page_size(), 0);
  std::memcpy(buf.data(), bytes.data(), bytes.size());
  return device()->WritePages(page, used, buf.data());
}

StatusOr<PageId> ExodusManager::NewLeaf(ByteView bytes) {
  EOS_ASSIGN_OR_RETURN(Extent e, allocator()->Allocate(config_.leaf_pages));
  EOS_RETURN_IF_ERROR(WriteLeaf(e.first, bytes));
  return e.first;
}

Status ExodusManager::FreeLeaf(PageId page) {
  return allocator()->Free(Extent{page, config_.leaf_pages});
}

StatusOr<std::vector<LobEntry>> ExodusManager::WriteLeaves(
    ByteView bytes, PageId reuse_page) {
  std::vector<LobEntry> out;
  if (bytes.empty()) {
    if (reuse_page != kInvalidPage) EOS_RETURN_IF_ERROR(FreeLeaf(reuse_page));
    return out;
  }
  uint64_t cap = leaf_capacity();
  uint64_t q = CeilDiv(bytes.size(), cap);
  uint64_t base = bytes.size() / q;
  uint64_t extra = bytes.size() % q;
  uint64_t pos = 0;
  for (uint64_t i = 0; i < q; ++i) {
    uint64_t len = base + (i < extra ? 1 : 0);
    ByteView chunk = bytes.Slice(pos, len);
    pos += len;
    PageId page;
    if (i == 0 && reuse_page != kInvalidPage) {
      page = reuse_page;
      EOS_RETURN_IF_ERROR(WriteLeaf(page, chunk));
    } else {
      EOS_ASSIGN_OR_RETURN(page, NewLeaf(chunk));
    }
    out.push_back(LobEntry{len, page});
  }
  return out;
}

// ----- tree plumbing (mirrors the EOS spine logic) ---------------------------

Status ExodusManager::DescendToLeaf(const LobDescriptor& d, uint64_t offset,
                                    std::vector<PathLevel>* path,
                                    LobEntry* leaf, uint64_t* local) const {
  if (offset >= d.size()) {
    return Status::OutOfRange("offset beyond object size");
  }
  path->clear();
  PathLevel level;
  level.page = kInvalidPage;
  level.node = d.root;
  uint64_t off = offset;
  for (;;) {
    level.child_idx = level.node.FindChild(&off);
    const LobEntry& e = level.node.entries[level.child_idx];
    uint16_t child_level = level.node.level;
    path->push_back(level);
    if (child_level == 0) {
      *leaf = e;
      *local = off;
      return Status::OK();
    }
    PathLevel next;
    next.page = e.page;
    auto node = const_cast<NodeStore&>(store_).Load(e.page);
    if (!node.ok()) return node.status();
    next.node = std::move(node).value();
    level = std::move(next);
  }
}

StatusOr<std::vector<LobEntry>> ExodusManager::WriteNodeMaybeSplit(
    PageId orig_page, LobNode&& node) {
  uint32_t cap = store_.capacity();
  std::vector<LobEntry> out;
  if (node.entries.size() <= cap) {
    if (node.entries.empty()) {
      if (orig_page != kInvalidPage) {
        EOS_RETURN_IF_ERROR(store_.FreePage(orig_page));
      }
      return out;
    }
    PageId page = orig_page;
    if (page == kInvalidPage) {
      EOS_ASSIGN_OR_RETURN(page, store_.WriteNew(node));
    } else {
      EOS_RETURN_IF_ERROR(store_.Write(&page, node));
    }
    out.push_back(LobEntry{node.Total(), page});
    return out;
  }
  size_t n = node.entries.size();
  size_t q = CeilDiv(n, cap);
  size_t base = n / q;
  size_t extra = n % q;
  size_t pos = 0;
  for (size_t i = 0; i < q; ++i) {
    size_t len = base + (i < extra ? 1 : 0);
    LobNode chunk;
    chunk.level = node.level;
    chunk.entries.assign(node.entries.begin() + pos,
                         node.entries.begin() + pos + len);
    pos += len;
    PageId page;
    if (i == 0 && orig_page != kInvalidPage) {
      page = orig_page;
      EOS_RETURN_IF_ERROR(store_.Write(&page, chunk));
    } else {
      EOS_ASSIGN_OR_RETURN(page, store_.WriteNew(chunk));
    }
    out.push_back(LobEntry{chunk.Total(), page});
  }
  return out;
}

Status ExodusManager::ReplaceInPath(LobDescriptor* d,
                                    std::vector<PathLevel>* path,
                                    std::vector<LobEntry> repl) {
  for (size_t i = path->size(); i-- > 1;) {
    PathLevel& lvl = (*path)[i];
    lvl.node.entries.erase(lvl.node.entries.begin() + lvl.child_idx);
    lvl.node.entries.insert(lvl.node.entries.begin() + lvl.child_idx,
                            repl.begin(), repl.end());
    EOS_ASSIGN_OR_RETURN(repl,
                         WriteNodeMaybeSplit(lvl.page, std::move(lvl.node)));
  }
  PathLevel& top = path->front();
  top.node.entries.erase(top.node.entries.begin() + top.child_idx);
  top.node.entries.insert(top.node.entries.begin() + top.child_idx,
                          repl.begin(), repl.end());
  d->root = std::move(top.node);
  EOS_RETURN_IF_ERROR(FitRoot(d));
  return CollapseRoot(d);
}

Status ExodusManager::FitRoot(LobDescriptor* d) {
  uint32_t cap = store_.capacity();
  while (d->root.entries.size() > root_capacity_) {
    size_t n = d->root.entries.size();
    // q == 1 yields the stable single-child root (CollapseRoot will not
    // re-pull a child larger than the root capacity); q >= 2 chunks are
    // each at least two entries because node capacity is at least 3.
    size_t q = CeilDiv(n, cap);
    size_t base = n / q;
    size_t extra = n % q;
    LobNode new_root;
    new_root.level = d->root.level + 1;
    size_t pos = 0;
    for (size_t i = 0; i < q; ++i) {
      size_t len = base + (i < extra ? 1 : 0);
      LobNode child;
      child.level = d->root.level;
      child.entries.assign(d->root.entries.begin() + pos,
                           d->root.entries.begin() + pos + len);
      pos += len;
      EOS_ASSIGN_OR_RETURN(PageId page, store_.WriteNew(child));
      new_root.entries.push_back(LobEntry{child.Total(), page});
    }
    d->root = std::move(new_root);
  }
  return Status::OK();
}

Status ExodusManager::CollapseRoot(LobDescriptor* d) {
  while (d->root.level > 0 && d->root.entries.size() == 1) {
    PageId child_page = d->root.entries[0].page;
    EOS_ASSIGN_OR_RETURN(LobNode child, store_.Load(child_page));
    if (child.entries.size() > root_capacity_) break;
    EOS_RETURN_IF_ERROR(store_.FreePage(child_page));
    d->root = std::move(child);
  }
  return Status::OK();
}

Status ExodusManager::FreeSubtree(const LobEntry& entry, uint16_t level) {
  if (level == 0) return FreeLeaf(entry.page);
  EOS_ASSIGN_OR_RETURN(LobNode node, store_.Load(entry.page));
  for (const LobEntry& e : node.entries) {
    EOS_RETURN_IF_ERROR(FreeSubtree(e, level - 1));
  }
  return store_.FreePage(entry.page);
}

// ----- operations ------------------------------------------------------------

StatusOr<LobDescriptor> ExodusManager::CreateFrom(ByteView data) {
  LobDescriptor d = CreateEmpty();
  EOS_RETURN_IF_ERROR(Append(&d, data));
  return d;
}

Status ExodusManager::Append(LobDescriptor* d, ByteView data) {
  if (data.empty()) return Status::OK();
  if (d->empty()) {
    EOS_ASSIGN_OR_RETURN(std::vector<LobEntry> leaves,
                         WriteLeaves(data, kInvalidPage));
    d->root.level = 0;
    d->root.entries = std::move(leaves);
    return FitRoot(d);
  }
  std::vector<PathLevel> path;
  LobEntry leaf;
  uint64_t local = 0;
  EOS_RETURN_IF_ERROR(DescendToLeaf(*d, d->size() - 1, &path, &leaf, &local));
  // Fill the last leaf in place; overflow spills into fresh leaves.
  EOS_ASSIGN_OR_RETURN(Bytes tail, ReadLeaf(leaf));
  tail.insert(tail.end(), data.data(), data.data() + data.size());
  EOS_ASSIGN_OR_RETURN(std::vector<LobEntry> repl,
                       WriteLeaves(tail, leaf.page));
  return ReplaceInPath(d, &path, std::move(repl));
}

Status ExodusManager::Read(const LobDescriptor& d, uint64_t offset,
                           uint64_t n, Bytes* out) {
  if (offset > d.size()) {
    return Status::OutOfRange("read offset beyond object size");
  }
  n = std::min(n, d.size() - offset);
  out->clear();
  out->reserve(n);
  uint64_t pos = offset;
  while (out->size() < n) {
    std::vector<PathLevel> path;
    LobEntry leaf;
    uint64_t local = 0;
    EOS_RETURN_IF_ERROR(DescendToLeaf(d, pos, &path, &leaf, &local));
    uint32_t ps = page_size();
    uint64_t want = std::min(n - out->size(), leaf.count - local);
    uint64_t p0 = local / ps;
    uint64_t p1 = (local + want - 1) / ps;
    Bytes buf((p1 - p0 + 1) * ps);
    EOS_RETURN_IF_ERROR(device()->ReadPages(
        leaf.page + p0, static_cast<uint32_t>(p1 - p0 + 1), buf.data()));
    out->insert(out->end(), buf.begin() + (local - p0 * ps),
                buf.begin() + (local - p0 * ps) + want);
    pos += want;
  }
  return Status::OK();
}

StatusOr<Bytes> ExodusManager::ReadAll(const LobDescriptor& d) {
  Bytes out;
  EOS_RETURN_IF_ERROR(Read(d, 0, d.size(), &out));
  return out;
}

Status ExodusManager::Replace(LobDescriptor* d, uint64_t offset,
                              ByteView data) {
  if (offset + data.size() > d->size()) {
    return Status::OutOfRange("replace range beyond object size");
  }
  uint64_t pos = 0;
  while (pos < data.size()) {
    std::vector<PathLevel> path;
    LobEntry leaf;
    uint64_t local = 0;
    EOS_RETURN_IF_ERROR(
        DescendToLeaf(*d, offset + pos, &path, &leaf, &local));
    uint64_t chunk = std::min<uint64_t>(data.size() - pos,
                                        leaf.count - local);
    EOS_ASSIGN_OR_RETURN(Bytes bytes, ReadLeaf(leaf));
    std::memcpy(bytes.data() + local, data.data() + pos, chunk);
    EOS_RETURN_IF_ERROR(WriteLeaf(leaf.page, bytes));
    pos += chunk;
  }
  return Status::OK();
}

Status ExodusManager::Insert(LobDescriptor* d, uint64_t offset,
                             ByteView data) {
  if (offset > d->size()) {
    return Status::OutOfRange("insert offset beyond object size");
  }
  if (data.empty()) return Status::OK();
  if (offset == d->size()) return Append(d, data);
  std::vector<PathLevel> path;
  LobEntry leaf;
  uint64_t local = 0;
  EOS_RETURN_IF_ERROR(DescendToLeaf(*d, offset, &path, &leaf, &local));
  EOS_ASSIGN_OR_RETURN(Bytes bytes, ReadLeaf(leaf));
  bytes.insert(bytes.begin() + local, data.data(),
               data.data() + data.size());
  // In place if it still fits, otherwise split into balanced leaves.
  EOS_ASSIGN_OR_RETURN(std::vector<LobEntry> repl,
                       WriteLeaves(bytes, leaf.page));
  return ReplaceInPath(d, &path, std::move(repl));
}

// ----- delete ---------------------------------------------------------------

struct ExodusManager::LeafSubst {
  PageId s_page = kInvalidPage;
  PageId s2_page = kInvalidPage;
  std::vector<LobEntry> left;
  std::vector<LobEntry> right;
};

// Boundary leaves were already rewritten or freed before tree surgery, so
// subtree frees must skip their pages.
Status ExodusManager::FreeSubtreeForDelete(const LobEntry& entry,
                                           uint16_t level,
                                           const LeafSubst& subst) {
  if (level == 0) {
    if (entry.page == subst.s_page || entry.page == subst.s2_page) {
      return Status::OK();
    }
    return FreeLeaf(entry.page);
  }
  EOS_ASSIGN_OR_RETURN(LobNode node, store_.Load(entry.page));
  for (const LobEntry& e : node.entries) {
    EOS_RETURN_IF_ERROR(FreeSubtreeForDelete(e, level - 1, subst));
  }
  return store_.FreePage(entry.page);
}

StatusOr<LobNode> ExodusManager::DeleteInNode(LobNode node, uint64_t lo,
                                              uint64_t hi,
                                              const LeafSubst& subst) {
  uint64_t off_l = lo;
  int il = node.FindChild(&off_l);
  uint64_t off_r = hi - 1;
  int ir = node.FindChild(&off_r);
  const uint32_t min_entries = std::max<uint32_t>(2, store_.min_entries());

  if (node.level == 0) {
    std::vector<LobEntry> spliced(node.entries.begin(),
                                  node.entries.begin() + il);
    for (int j = il; j <= ir; ++j) {
      const LobEntry& e = node.entries[j];
      if (e.page == subst.s_page) {
        spliced.insert(spliced.end(), subst.left.begin(), subst.left.end());
        if (subst.s2_page == subst.s_page) {
          spliced.insert(spliced.end(), subst.right.begin(),
                         subst.right.end());
        }
      } else if (e.page == subst.s2_page) {
        spliced.insert(spliced.end(), subst.right.begin(),
                       subst.right.end());
      } else {
        EOS_RETURN_IF_ERROR(FreeSubtreeForDelete(e, 0, subst));
      }
    }
    spliced.insert(spliced.end(), node.entries.begin() + ir + 1,
                   node.entries.end());
    node.entries = std::move(spliced);
    return node;
  }

  for (int j = il + 1; j < ir; ++j) {
    EOS_RETURN_IF_ERROR(FreeSubtreeForDelete(node.entries[j], node.level, subst));
  }
  const LobEntry el = node.entries[il];
  const LobEntry er = node.entries[ir];
  std::vector<LobEntry> repl;
  if (il == ir) {
    uint64_t lo_c = off_l;
    uint64_t hi_c = hi - (lo - off_l);
    if (lo_c == 0 && hi_c == el.count) {
      EOS_RETURN_IF_ERROR(FreeSubtreeForDelete(el, node.level, subst));
    } else {
      EOS_ASSIGN_OR_RETURN(LobNode child, store_.Load(el.page));
      EOS_ASSIGN_OR_RETURN(LobNode res,
                           DeleteInNode(std::move(child), lo_c, hi_c, subst));
      EOS_ASSIGN_OR_RETURN(repl, WriteNodeMaybeSplit(el.page,
                                                     std::move(res)));
    }
  } else {
    bool have_l = off_l > 0;
    bool have_r = off_r + 1 < er.count;
    LobNode lres, rres;
    if (have_l) {
      EOS_ASSIGN_OR_RETURN(LobNode child, store_.Load(el.page));
      EOS_ASSIGN_OR_RETURN(
          lres, DeleteInNode(std::move(child), off_l, el.count, subst));
    } else {
      EOS_RETURN_IF_ERROR(FreeSubtreeForDelete(el, node.level, subst));
    }
    if (have_r) {
      EOS_ASSIGN_OR_RETURN(LobNode child, store_.Load(er.page));
      EOS_ASSIGN_OR_RETURN(
          rres, DeleteInNode(std::move(child), 0, off_r + 1, subst));
    } else {
      EOS_RETURN_IF_ERROR(FreeSubtreeForDelete(er, node.level, subst));
    }
    if (have_l && have_r &&
        lres.entries.size() + rres.entries.size() <= store_.capacity()) {
      lres.entries.insert(lres.entries.end(), rres.entries.begin(),
                          rres.entries.end());
      PageId page = el.page;
      EOS_RETURN_IF_ERROR(store_.Write(&page, lres));
      EOS_RETURN_IF_ERROR(store_.FreePage(er.page));
      repl.push_back(LobEntry{lres.Total(), page});
    } else {
      if (have_l) {
        if (have_r && (lres.entries.size() < min_entries ||
                       rres.entries.size() < min_entries)) {
          std::vector<LobEntry> all(std::move(lres.entries));
          all.insert(all.end(), rres.entries.begin(), rres.entries.end());
          size_t half = all.size() / 2;
          lres.entries.assign(all.begin(), all.begin() + half);
          rres.entries.assign(all.begin() + half, all.end());
        }
        EOS_ASSIGN_OR_RETURN(std::vector<LobEntry> e1,
                             WriteNodeMaybeSplit(el.page, std::move(lres)));
        repl.insert(repl.end(), e1.begin(), e1.end());
      }
      if (have_r) {
        EOS_ASSIGN_OR_RETURN(std::vector<LobEntry> e2,
                             WriteNodeMaybeSplit(er.page, std::move(rres)));
        repl.insert(repl.end(), e2.begin(), e2.end());
      }
    }
  }
  node.entries.erase(node.entries.begin() + il,
                     node.entries.begin() + ir + 1);
  node.entries.insert(node.entries.begin() + il, repl.begin(), repl.end());
  return node;
}

Status ExodusManager::Delete(LobDescriptor* d, uint64_t offset, uint64_t n) {
  if (offset > d->size()) {
    return Status::OutOfRange("delete offset beyond object size");
  }
  n = std::min(n, d->size() - offset);
  if (n == 0) return Status::OK();
  uint64_t start = offset;
  uint64_t end = offset + n;
  if (start == 0 && end == d->size()) return Destroy(d);

  std::vector<PathLevel> path_l, path_r;
  LobEntry leaf_l, leaf_r;
  uint64_t local_l = 0, local_r = 0;
  EOS_RETURN_IF_ERROR(DescendToLeaf(*d, start, &path_l, &leaf_l, &local_l));
  EOS_RETURN_IF_ERROR(DescendToLeaf(*d, end - 1, &path_r, &leaf_r, &local_r));
  bool same = leaf_l.page == leaf_r.page;

  LeafSubst subst;
  subst.s_page = leaf_l.page;
  subst.s2_page = leaf_r.page;
  if (same) {
    EOS_ASSIGN_OR_RETURN(Bytes bytes, ReadLeaf(leaf_l));
    bytes.erase(bytes.begin() + local_l, bytes.begin() + local_r + 1);
    EOS_ASSIGN_OR_RETURN(subst.left, WriteLeaves(bytes, leaf_l.page));
  } else {
    EOS_ASSIGN_OR_RETURN(Bytes lbytes, ReadLeaf(leaf_l));
    lbytes.resize(local_l);
    EOS_ASSIGN_OR_RETURN(Bytes rbytes, ReadLeaf(leaf_r));
    rbytes.erase(rbytes.begin(), rbytes.begin() + local_r + 1);
    // Merge the boundary remains into one leaf if they fit (the Exodus
    // delete keeps leaves at least half full by merging with a neighbor).
    if (lbytes.size() + rbytes.size() <= leaf_capacity()) {
      lbytes.insert(lbytes.end(), rbytes.begin(), rbytes.end());
      EOS_ASSIGN_OR_RETURN(subst.left, WriteLeaves(lbytes, leaf_l.page));
      EOS_RETURN_IF_ERROR(FreeLeaf(leaf_r.page));
    } else {
      EOS_ASSIGN_OR_RETURN(subst.left, WriteLeaves(lbytes, leaf_l.page));
      EOS_ASSIGN_OR_RETURN(subst.right, WriteLeaves(rbytes, leaf_r.page));
    }
  }

  EOS_ASSIGN_OR_RETURN(LobNode new_root,
                       DeleteInNode(std::move(d->root), start, end, subst));
  d->root = std::move(new_root);
  EOS_RETURN_IF_ERROR(FitRoot(d));
  return CollapseRoot(d);
}

Status ExodusManager::Destroy(LobDescriptor* d) {
  for (const LobEntry& e : d->root.entries) {
    EOS_RETURN_IF_ERROR(FreeSubtree(e, d->root.level));
  }
  d->root = LobNode{};
  return Status::OK();
}

// ----- stats -----------------------------------------------------------------

Status ExodusManager::WalkStats(const LobEntry& entry, uint16_t level,
                                LobStats* stats) {
  if (level == 0) {
    ++stats->num_segments;
    stats->leaf_pages += config_.leaf_pages;  // fixed allocation, slack incl.
    uint64_t pages = config_.leaf_pages;
    stats->min_segment_pages = stats->num_segments == 1
                                   ? pages
                                   : std::min(stats->min_segment_pages, pages);
    stats->max_segment_pages = std::max(stats->max_segment_pages, pages);
    return Status::OK();
  }
  EOS_ASSIGN_OR_RETURN(LobNode node, store_.Load(entry.page));
  ++stats->index_pages;
  for (const LobEntry& e : node.entries) {
    EOS_RETURN_IF_ERROR(WalkStats(e, level - 1, stats));
  }
  return Status::OK();
}

StatusOr<LobStats> ExodusManager::Stats(const LobDescriptor& d) {
  LobStats stats;
  stats.size_bytes = d.size();
  stats.depth = d.root.level;
  for (const LobEntry& e : d.root.entries) {
    EOS_RETURN_IF_ERROR(WalkStats(e, d.root.level, &stats));
  }
  if (stats.num_segments > 0) {
    stats.avg_segment_pages =
        static_cast<double>(stats.leaf_pages) / stats.num_segments;
  }
  if (stats.leaf_pages > 0) {
    stats.leaf_utilization = static_cast<double>(stats.size_bytes) /
                             (static_cast<double>(stats.leaf_pages) *
                              page_size());
    stats.total_utilization =
        static_cast<double>(stats.size_bytes) /
        (static_cast<double>(stats.leaf_pages + stats.index_pages) *
         page_size());
  }
  return stats;
}

Status ExodusManager::WalkCheck(const LobEntry& entry, uint16_t level) {
  if (entry.count == 0) return Status::Corruption("zero-count entry");
  if (level == 0) {
    if (entry.count > leaf_capacity()) {
      return Status::Corruption("leaf byte count exceeds leaf capacity");
    }
    return Status::OK();
  }
  EOS_ASSIGN_OR_RETURN(LobNode node, store_.Load(entry.page));
  if (node.level != level - 1) {
    return Status::Corruption("child node level mismatch");
  }
  if (node.Total() != entry.count) {
    return Status::Corruption("child total does not match parent count");
  }
  for (const LobEntry& e : node.entries) {
    EOS_RETURN_IF_ERROR(WalkCheck(e, level - 1));
  }
  return Status::OK();
}

Status ExodusManager::CheckInvariants(const LobDescriptor& d) {
  for (const LobEntry& e : d.root.entries) {
    EOS_RETURN_IF_ERROR(WalkCheck(e, d.root.level));
  }
  return Status::OK();
}

}  // namespace eos
