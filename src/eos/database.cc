#include "eos/database.h"

#include <algorithm>
#include <cstring>
#include <thread>

#include "buddy/free_capture.h"
#include "buddy/geometry.h"
#include "common/math.h"
#include "io/verified_device.h"
#include "obs/event_journal.h"
#include "obs/metric_names.h"
#include "obs/op_tracer.h"
#include "txn/recovery.h"

namespace eos {

namespace {

// The directory object's root lives inside the superblock page; keep it
// comfortably small.
constexpr uint32_t kDirRootBytes = 256;
constexpr uint32_t kSuperHeaderBytes = 32;

// Opens the v2 directory serialization; no v1 entry can start with it
// (object ids are monotone from 1).
constexpr uint64_t kDirSentinel = ~uint64_t{0};
constexpr uint32_t kDirFormatV2 = 2;

// Reads the format epoch from the raw (unwrapped) superblock page, so the
// caller knows whether to stack the integrity layer before anything else
// touches the device. A non-EOS or empty volume reads as epoch 0 and the
// regular superblock validation reports it.
StatusOr<uint16_t> PeekEpoch(PageDevice* dev) {
  if (dev->page_count() == 0) return uint16_t{0};
  Bytes page(dev->page_size());
  EOS_RETURN_IF_ERROR(dev->ReadPages(Database::kSuperblockPage, 1,
                                     page.data()));
  if (DecodeU32(page.data()) != Database::kMagic) return uint16_t{0};
  return DecodeU16(page.data() + 30);
}

// Directory maintenance is internal bookkeeping: its large-object writes
// must not appear in the user-visible operation log.
class ScopedDirLogSuspend {
 public:
  explicit ScopedDirLogSuspend(LobManager* lob)
      : lob_(lob), saved_(lob->log_manager()) {
    lob_->set_log_manager(nullptr);
  }
  ~ScopedDirLogSuspend() { lob_->set_log_manager(saved_); }

 private:
  LobManager* lob_;
  LogManager* saved_;
};

}  // namespace

Database::~Database() {
  // The defrag thread calls back into this object; it must be gone before
  // any member is torn down (and before the final flush, so the flush sees
  // a quiesced volume).
  if (defrag_ != nullptr) defrag_->Stop();
  if (options_.mvcc && allocator_ != nullptr) {
    // Snapshots must not outlive the database; collapse every chain and
    // reclaim the retired storage so a cleanly closed volume reopens
    // leak-free (the allocation maps are durable even without crash_safe).
    ExclusiveLatchGuard guard(dir_latch_);
    {
      LatchGuard vg(versions_latch_);
      for (auto& [id, chain] : versions_) {
        for (ObjectVersion& v : chain) {
          gc_ready_.insert(gc_ready_.end(), v.retired.begin(),
                           v.retired.end());
        }
      }
      versions_.clear();
    }
    (void)DrainVersionGcLocked();
    // Crash-safe: the drain parked the frees; checkpoint them out.
    (void)CheckpointLocked();
  }
  (void)Flush();
  // Stop after the flush so the final sidecar snapshot sees its I/O.
  if (snapshot_writer_ != nullptr) snapshot_writer_->Stop();
}

void Database::StartSnapshotWriter(const std::string& volume_path) {
  if (options_.obs_snapshot_interval_ms == 0 || !obs::Enabled()) return;
  snapshot_writer_ = std::make_unique<obs::SnapshotWriter>();
  snapshot_writer_->Start(obs::SnapshotPathFor(volume_path),
                          options_.obs_snapshot_interval_ms);
}

StatusOr<std::unique_ptr<Database>> Database::Create(
    const std::string& path, const DatabaseOptions& options) {
  // Only the superblock page is preallocated: the usable page size (and
  // with it the space geometry) depends on whether the integrity layer is
  // stacked, so Init decides and grows the volume from there.
  EOS_ASSIGN_OR_RETURN(
      std::unique_ptr<FilePageDevice> dev,
      FilePageDevice::Create(path, options.page_size, /*page_count=*/1));
  EOS_ASSIGN_OR_RETURN(std::unique_ptr<Database> db,
                       Init(std::move(dev), options, /*fresh=*/true));
  db->StartSnapshotWriter(path);
  return db;
}

StatusOr<std::unique_ptr<Database>> Database::Open(
    const std::string& path, const DatabaseOptions& options) {
  EOS_ASSIGN_OR_RETURN(std::unique_ptr<FilePageDevice> dev,
                       FilePageDevice::Open(path, options.page_size));
  EOS_ASSIGN_OR_RETURN(std::unique_ptr<Database> db,
                       Init(std::move(dev), options, /*fresh=*/false));
  db->StartSnapshotWriter(path);
  return db;
}

StatusOr<std::unique_ptr<Database>> Database::CreateInMemory(
    const DatabaseOptions& options) {
  auto dev = std::make_unique<MemPageDevice>(options.page_size,
                                             /*page_count=*/1);
  return Init(std::move(dev), options, /*fresh=*/true);
}

StatusOr<std::unique_ptr<Database>> Database::CreateOnDevice(
    std::unique_ptr<PageDevice> device, const DatabaseOptions& options) {
  if (device == nullptr) return Status::InvalidArgument("null device");
  if (device->page_size() != options.page_size) {
    return Status::InvalidArgument(
        "device page size differs from the configured page size");
  }
  if (device->page_count() < 1) {
    EOS_RETURN_IF_ERROR(device->Grow(1));
  }
  return Init(std::move(device), options, /*fresh=*/true);
}

StatusOr<std::unique_ptr<Database>> Database::OpenOnDevice(
    std::unique_ptr<PageDevice> device, const DatabaseOptions& options) {
  if (device == nullptr) return Status::InvalidArgument("null device");
  return Init(std::move(device), options, /*fresh=*/false);
}

StatusOr<std::unique_ptr<Database>> Database::CreateOnVolumeSet(
    std::vector<std::unique_ptr<PageDevice>> members,
    VolumeSetOptions set_options, const DatabaseOptions& options) {
  for (const auto& m : members) {
    if (m != nullptr && m->page_size() != options.page_size) {
      return Status::InvalidArgument(
          "member page size differs from the configured page size");
    }
  }
  if (set_options.chunk_pages == 0) {
    // One buddy space footprint (directory page + data pages) per chunk:
    // extents never straddle members and spaces stripe across volumes.
    EOS_ASSIGN_OR_RETURN(
        BuddyGeometry geo,
        BuddyGeometry::Make(
            options.page_size - VerifiedPageDevice::kTrailerBytes,
            options.space_pages));
    set_options.chunk_pages = geo.space_pages + 1;
  }
  set_options.format_epoch = kFormatEpoch;
  EOS_ASSIGN_OR_RETURN(
      std::unique_ptr<VolumeSetDevice> set,
      VolumeSetDevice::Format(std::move(members), set_options));
  EOS_RETURN_IF_ERROR(set->Grow(1));  // the superblock chunk
  return Init(std::move(set), options, /*fresh=*/true);
}

StatusOr<std::unique_ptr<Database>> Database::OpenOnVolumeSet(
    std::vector<std::unique_ptr<PageDevice>> members,
    VolumeSetOptions set_options, const DatabaseOptions& options) {
  for (const auto& m : members) {
    if (m != nullptr && m->page_size() != options.page_size) {
      return Status::InvalidArgument(
          "member page size differs from the configured page size");
    }
  }
  set_options.format_epoch = kFormatEpoch;
  EOS_ASSIGN_OR_RETURN(
      std::unique_ptr<VolumeSetDevice> set,
      VolumeSetDevice::Open(std::move(members), set_options));
  return Init(std::move(set), options, /*fresh=*/false);
}

StatusOr<std::unique_ptr<Database>> Database::Init(
    std::unique_ptr<PageDevice> device, const DatabaseOptions& options,
    bool fresh) {
  std::unique_ptr<Database> db(new Database());
  db->options_ = options;
  // Stack the integrity layer under everything else. Fresh volumes opt in
  // via options (crash_safe implies it: a torn page must fail closed, not
  // read back as garbage); existing volumes declare it themselves via the
  // format epoch in the raw superblock.
  // A volume set already verifies per member (trailers and quarantine are
  // member-local); stacking another integrity layer on the logical space
  // would double-trailer every page.
  auto* vs = dynamic_cast<VolumeSetDevice*>(device.get());
  db->volume_set_ = vs;
  uint16_t epoch = 0;
  if (vs == nullptr) {
    if (fresh) {
      if (options.checksums || options.crash_safe) epoch = kFormatEpoch;
    } else {
      EOS_ASSIGN_OR_RETURN(epoch, PeekEpoch(device.get()));
    }
  }
  if (epoch != 0) {
    if (device->page_size() <= 2 * VerifiedPageDevice::kTrailerBytes) {
      return Status::InvalidArgument(
          "page size too small for checksummed pages");
    }
    auto verified = std::make_unique<VerifiedPageDevice>(
        std::move(device), epoch, options.io_retry);
    db->verified_ = verified.get();
    device = std::move(verified);
  }
  db->device_ = std::move(device);
  db->pager_ = std::make_unique<Pager>(db->device_.get(),
                                       std::max<size_t>(8,
                                                        options.pager_frames));
  // Write-through must be on before any page is formatted: a durable page
  // may only reference pages that are themselves already durable.
  if (options.crash_safe) db->pager_->set_write_through(true);
  uint32_t space_pages = options.space_pages;
  uint32_t num_spaces = std::max<uint32_t>(1, options.initial_spaces);
  if (!fresh) {
    EOS_RETURN_IF_ERROR(db->ReadSuperblock(&space_pages, &num_spaces));
  }
  EOS_ASSIGN_OR_RETURN(
      BuddyGeometry geo,
      BuddyGeometry::Make(db->device_->page_size(), space_pages));
  SegmentAllocator::Options aopt;
  aopt.initial_spaces = num_spaces;
  aopt.auto_grow = true;
  aopt.emergency_reserve_pages = options.emergency_reserve_pages;
  // Consecutive spaces live on different volume-set members; rotating the
  // scan start stripes objects across them instead of packing member 0.
  aopt.rotate_spaces = vs != nullptr;
  if (fresh) {
    EOS_ASSIGN_OR_RETURN(db->allocator_,
                         SegmentAllocator::Format(db->pager_.get(), geo,
                                                  kFirstSpacePage, aopt));
  } else {
    EOS_ASSIGN_OR_RETURN(
        db->allocator_,
        SegmentAllocator::Attach(db->pager_.get(), geo, kFirstSpacePage,
                                 num_spaces, aopt));
  }
  db->lob_ = std::make_unique<LobManager>(db->pager_.get(),
                                          db->allocator_.get(), options.lob);
  if (options.parallel_io) {
    db->lob_->set_io_executor(IoExecutor::Default());
  }
  if (options.crash_safe) {
    db->lob_->set_shadowing(true);
    db->deferred_frees_ = std::make_unique<CheckpointFreeList>();
    db->allocator_->set_free_interceptor(db->deferred_frees_.get());
  }
  if (options.mvcc) {
    // Snapshot readers traverse superseded versions while writers publish
    // new ones; no page a pinned version references may ever be rewritten
    // in place, so shadowed index nodes and CoW Replace are mandatory.
    db->lob_->set_shadowing(true);
    db->lob_->set_cow_replace(true);
  }
  if (options.cache_bytes > 0) {
    ExtentCache::Options copt;
    copt.capacity_bytes = options.cache_bytes;
    copt.compress = options.cache_compression;
    db->cache_ = std::make_unique<ExtentCache>(copt);
  }
  if (fresh) {
    EOS_RETURN_IF_ERROR(db->WriteSuperblock());
  } else {
    EOS_RETURN_IF_ERROR(db->LoadDirectory());
  }
  if (options.mvcc) db->SeedVersionChains();
  db->defrag_ = std::make_unique<Defragmenter>(
      static_cast<DefragHost*>(db.get()), db->lob_.get(), options.defrag);
  if (options.defrag.enabled) db->defrag_->Start();
  return db;
}

uint32_t Database::DirRootSlotBytes() const {
  return std::min(kDirRootBytes, device_->page_size() - kSuperHeaderBytes);
}

Status Database::WriteSuperblock() {
  EOS_ASSIGN_OR_RETURN(PageHandle h, pager_->Zeroed(kSuperblockPage));
  uint8_t* p = h.data();
  EncodeU32(p, kMagic);
  EncodeU32(p + 4, kVersion);
  EncodeU32(p + 8, device_->page_size());
  EncodeU32(p + 12, allocator_->geometry().space_pages);
  EncodeU32(p + 16, allocator_->num_spaces());
  EncodeU64(p + 20, next_object_id_);
  EncodeU16(p + 30, verified_ != nullptr
                        ? verified_->epoch()
                        : (volume_set_ != nullptr
                               ? volume_set_->options().format_epoch
                               : 0));
  Bytes root = dir_object_.Serialize();
  if (root.size() > DirRootSlotBytes()) {
    return Status::Corruption("directory root outgrew its superblock slot");
  }
  EncodeU16(p + 28, static_cast<uint16_t>(root.size()));
  std::memcpy(p + kSuperHeaderBytes, root.data(), root.size());
  h.MarkDirty();
  return Status::OK();
}

Status Database::ReadSuperblock(uint32_t* space_pages, uint32_t* num_spaces) {
  EOS_ASSIGN_OR_RETURN(PageHandle h, pager_->Fetch(kSuperblockPage));
  const uint8_t* p = h.data();
  if (DecodeU32(p) != kMagic) {
    return Status::Corruption("not an EOS volume (superblock magic)");
  }
  uint32_t version = DecodeU32(p + 4);
  if (version < 1 || version > kVersion) {
    return Status::Corruption("unsupported EOS volume version " +
                              std::to_string(version));
  }
  if (DecodeU32(p + 8) != device_->page_size()) {
    return Status::InvalidArgument(
        "volume page size differs from the configured page size");
  }
  *space_pages = DecodeU32(p + 12);
  *num_spaces = DecodeU32(p + 16);
  next_object_id_ = DecodeU64(p + 20);
  uint16_t root_len = DecodeU16(p + 28);
  if (root_len > 0) {
    if (root_len > DirRootSlotBytes()) {
      return Status::Corruption("directory root overflows its slot");
    }
    EOS_ASSIGN_OR_RETURN(
        dir_object_,
        LobDescriptor::Deserialize(ByteView(p + kSuperHeaderBytes, root_len)));
  }
  return Status::OK();
}

Status Database::LoadDirectory() {
  directory_.clear();
  holes_.clear();
  if (dir_object_.empty()) return Status::OK();
  EOS_ASSIGN_OR_RETURN(Bytes all, lob_->ReadAll(dir_object_));
  size_t pos = 0;
  bool v2 = false;
  if (all.size() >= 12 && DecodeU64(all.data()) == kDirSentinel) {
    if (DecodeU32(all.data() + 8) != kDirFormatV2) {
      return Status::Corruption("unknown object directory format");
    }
    v2 = true;
    pos = 12;
  }
  while (pos < all.size()) {
    size_t header = v2 ? 16 : 12;
    if (pos + header > all.size()) {
      return Status::Corruption("truncated object directory entry");
    }
    uint64_t id = DecodeU64(all.data() + pos);
    uint32_t len = DecodeU32(all.data() + pos + 8);
    uint32_t hole_count = v2 ? DecodeU32(all.data() + pos + 12) : 0;
    if (pos + header + len + uint64_t{hole_count} * 16 > all.size()) {
      return Status::Corruption("truncated object directory root");
    }
    directory_.emplace_back(id, Bytes(all.begin() + pos + header,
                                      all.begin() + pos + header + len));
    pos += header + len;
    if (hole_count > 0) {
      std::vector<HoleRange>& h = holes_[id];
      h.reserve(hole_count);
      for (uint32_t i = 0; i < hole_count; ++i) {
        h.push_back(HoleRange{DecodeU64(all.data() + pos),
                              DecodeU64(all.data() + pos + 8)});
        pos += 16;
      }
    }
  }
  return Status::OK();
}

Status Database::SaveDirectory() {
  // The directory rewrite is maintenance, not a user mutation: it must
  // complete even on a full volume (a refused delete could otherwise never
  // durably leave the directory), so it may consume the emergency reserve.
  SegmentAllocator::EmergencyScope emergency;
  ScopedDirLogSuspend suspend(lob_.get());
  Bytes all;
  if (!directory_.empty()) {
    all.resize(12);
    EncodeU64(all.data(), kDirSentinel);
    EncodeU32(all.data() + 8, kDirFormatV2);
  }
  for (const auto& [id, root] : directory_) {
    auto hit = holes_.find(id);
    const std::vector<HoleRange>* h =
        hit == holes_.end() || hit->second.empty() ? nullptr : &hit->second;
    size_t nholes = h == nullptr ? 0 : h->size();
    size_t at = all.size();
    all.resize(at + 16 + root.size() + nholes * 16);
    EncodeU64(all.data() + at, id);
    EncodeU32(all.data() + at + 8, static_cast<uint32_t>(root.size()));
    EncodeU32(all.data() + at + 12, static_cast<uint32_t>(nholes));
    std::memcpy(all.data() + at + 16, root.data(), root.size());
    for (size_t i = 0; i < nholes; ++i) {
      size_t ho = at + 16 + root.size() + i * 16;
      EncodeU64(all.data() + ho, (*h)[i].offset);
      EncodeU64(all.data() + ho + 8, (*h)[i].length);
    }
  }
  // Rewrite the directory object wholesale. Its root must stay within the
  // superblock slot, so cap it explicitly.
  if (!dir_object_.empty()) {
    EOS_RETURN_IF_ERROR(lob_->Destroy(&dir_object_));
  }
  if (!all.empty()) {
    LobConfig cfg = lob_->config();
    // The descriptor is rebuilt via the normal appender path; the root
    // capacity of lob_ applies, so verify it fits the superblock slot.
    (void)cfg;
    EOS_ASSIGN_OR_RETURN(dir_object_, lob_->CreateFrom(all));
    if (dir_object_.SerializedBytes() > DirRootSlotBytes()) {
      return Status::Corruption(
          "object directory root exceeds its superblock slot; lower "
          "max_root_bytes or raise kDirRootBytes");
    }
  }
  // No-force policy in crash-safe mode: the superblock is rewritten only at
  // Checkpoint()/Flush(), so the durable root always describes the last
  // checkpoint and the write-ahead log carries everything since. The old
  // directory object stays readable until then — its segments are parked,
  // not freed — which is what Recover() re-opens after a crash.
  if (options_.crash_safe) return Status::OK();
  return WriteSuperblock();
}

StatusOr<uint64_t> Database::CreateObjectLocked() {
  obs::ScopedOp span("db.create_object", 0, device_.get());
  Status adm = allocator_->AdmitMutation();
  if (!adm.ok()) return span.Close(std::move(adm));
  uint64_t id = next_object_id_++;
  LobDescriptor d = lob_->CreateEmpty();
  Bytes root = d.Serialize();
  directory_.emplace_back(id, root);
  if (options_.mvcc) PublishVersion(id, root, d.lsn, /*dead=*/false);
  TouchLocked(id);
  Status s = SaveDirectory();
  if (!s.ok()) return span.Close(std::move(s));
  return id;
}

StatusOr<uint64_t> Database::CreateObject() {
  ExclusiveLatchGuard guard(dir_latch_);
  return CreateObjectLocked();
}

StatusOr<uint64_t> Database::CreateObjectFrom(ByteView data) {
  uint64_t id = 0;
  uint64_t commit_lsn = 0;
  {
    ExclusiveLatchGuard guard(dir_latch_);
    EOS_ASSIGN_OR_RETURN(id, CreateObjectLocked());
    obs::ScopedOp span("db.create_object_from", id, device_.get());
    if (log_ != nullptr) log_->set_current_object(id);
    // Append (not CreateFrom) so the initial content is a logged operation;
    // a one-shot append of a known size produces the same exact layout.
    LobDescriptor d = lob_->CreateEmpty();
    {
      ScopedFreeCapture capture(allocator_.get(), options_.mvcc);
      Status s = lob_->Append(&d, data);
      if (!s.ok()) return span.Close(std::move(s));
      pending_retired_ = capture.TakeCaptured();
    }
    Status s = PutRootLocked(id, d);
    if (!s.ok()) return span.Close(std::move(s));
    s = CommitMutationLocked(id, &commit_lsn);
    if (!s.ok()) return span.Close(std::move(s));
  }
  EOS_RETURN_IF_ERROR(SyncCommit(commit_lsn));
  return id;
}

StatusOr<LobDescriptor> Database::GetRootLocked(uint64_t id) {
  for (const auto& [oid, root] : directory_) {
    if (oid == id) {
      EOS_ASSIGN_OR_RETURN(LobDescriptor d, LobDescriptor::Deserialize(root));
      auto hint = threshold_hints_.find(id);
      if (hint != threshold_hints_.end()) d.threshold_hint = hint->second;
      return d;
    }
  }
  return Status::NotFound("object " + std::to_string(id));
}

StatusOr<LobDescriptor> Database::GetRoot(uint64_t id) {
  SharedLatchGuard guard(dir_latch_);
  return GetRootLocked(id);
}

void Database::SetObjectThreshold(uint64_t id, uint32_t threshold_pages) {
  ExclusiveLatchGuard guard(dir_latch_);
  if (threshold_pages == 0) {
    threshold_hints_.erase(id);
  } else {
    threshold_hints_[id] = threshold_pages;
  }
}

Status Database::ReorganizeObject(uint64_t id) {
  ExclusiveLatchGuard guard(dir_latch_);
  obs::ScopedOp span("db.reorganize", id, device_.get());
  Status adm = allocator_->AdmitMutation();
  if (!adm.ok()) return span.Close(std::move(adm));
  EOS_ASSIGN_OR_RETURN(LobDescriptor d, GetRootLocked(id));
  {
    ScopedFreeCapture capture(allocator_.get(), options_.mvcc);
    Status s = lob_->Reorganize(&d);
    if (!s.ok()) return span.Close(std::move(s));
    pending_retired_ = capture.TakeCaptured();
  }
  return span.Close(PutRootLocked(id, d));
}

Status Database::PutRootLocked(uint64_t id, const LobDescriptor& d) {
  for (auto& [oid, root] : directory_) {
    if (oid == id) {
      root = d.Serialize();
      if (cache_ != nullptr && !options_.mvcc) {
        // Without version chains the cache key is the per-object mutation
        // generation; bump it and drop the dead generation's entries (the
        // new root may reuse leaf extents the old one wrote in place).
        uint64_t& gen = cache_gen_[id];
        gen = gen == 0 ? 2 : gen + 1;
        cache_->InvalidateObject(id);
      }
      // Publish before the directory save: the in-memory root above is the
      // current version from here on even if the save fails (the next
      // successful save persists it), and snapshot pins must track it.
      if (options_.mvcc) PublishVersion(id, root, d.lsn, /*dead=*/false);
      Status s = SaveDirectory();
      if (options_.mvcc) {
        Status gc = DrainVersionGcLocked();
        if (s.ok()) s = std::move(gc);
      }
      return s;
    }
  }
  pending_retired_.clear();  // nothing published; drop any stale capture
  return Status::NotFound("object " + std::to_string(id));
}

Status Database::PutRoot(uint64_t id, const LobDescriptor& d) {
  ExclusiveLatchGuard guard(dir_latch_);
  Status s = PutRootLocked(id, d);
  if (s.ok()) TouchLocked(id);
  return s;
}

void Database::TouchLocked(uint64_t id) {
  last_mutation_[id] = mutation_clock_.fetch_add(1) + 1;
}

StatusOr<std::vector<uint64_t>> Database::ListObjects() {
  SharedLatchGuard guard(dir_latch_);
  std::vector<uint64_t> ids;
  ids.reserve(directory_.size());
  for (const auto& [id, root] : directory_) ids.push_back(id);
  return ids;
}

Status Database::DropObject(uint64_t id) {
  obs::ScopedOp span("db.drop_object", id, device_.get());
  uint64_t commit_lsn = 0;
  bool found = false;
  {
    ExclusiveLatchGuard guard(dir_latch_);
    for (size_t i = 0; i < directory_.size(); ++i) {
      if (directory_[i].first != id) continue;
      found = true;
      EOS_ASSIGN_OR_RETURN(
          LobDescriptor d, LobDescriptor::Deserialize(directory_[i].second));
      if (log_ != nullptr) log_->set_current_object(id);
      // Destroy only frees, but the scope keeps any transient allocation
      // (and the follow-up directory save) working on a full volume.
      SegmentAllocator::EmergencyScope emergency;
      {
        ScopedFreeCapture capture(allocator_.get(), options_.mvcc);
        Status s = lob_->Destroy(&d);
        if (!s.ok()) return span.Close(std::move(s));
        pending_retired_ = capture.TakeCaptured();
      }
      directory_.erase(directory_.begin() + i);
      holes_.erase(id);
      last_mutation_.erase(id);
      if (cache_ != nullptr && !options_.mvcc) {
        cache_gen_.erase(id);
        cache_->InvalidateObject(id);
      }
      if (options_.mvcc) {
        // Drop marker: open snapshots keep reading the final content
        // version; the tree's extents free once the last pin releases.
        PublishVersion(id, Bytes{}, 0, /*dead=*/true);
      }
      Status s = SaveDirectory();
      if (!s.ok()) return span.Close(std::move(s));
      s = CommitMutationLocked(id, &commit_lsn);
      if (!s.ok()) return span.Close(std::move(s));
      s = DrainVersionGcLocked();
      if (!s.ok()) return span.Close(std::move(s));
      break;
    }
  }
  if (!found) {
    return span.Close(Status::NotFound("object " + std::to_string(id)));
  }
  return span.Close(SyncCommit(commit_lsn));
}

StatusOr<uint64_t> Database::Size(uint64_t id) {
  SharedLatchGuard guard(dir_latch_);
  EOS_ASSIGN_OR_RETURN(LobDescriptor d, GetRootLocked(id));
  return d.size();
}

StatusOr<Bytes> Database::Read(uint64_t id, uint64_t offset, uint64_t n) {
  SharedLatchGuard guard(dir_latch_);
  obs::ScopedOp span("db.read", id, device_.get());
  EOS_ASSIGN_OR_RETURN(LobDescriptor d, GetRootLocked(id));
  uint64_t vseq = CacheVseqLocked(id);
  ScopedExtentCacheRef cache_scope(vseq == 0 ? nullptr : cache_.get(), id,
                                   vseq);
  Bytes out;
  Status s = lob_->Read(d, offset, n, &out);
  if (!s.ok()) return span.Close(std::move(s));
  return out;
}

Status Database::Append(uint64_t id, ByteView data) {
  obs::ScopedOp span("db.append", id, device_.get());
  uint64_t commit_lsn = 0;
  {
    ExclusiveLatchGuard guard(dir_latch_);
    Status adm = allocator_->AdmitMutation();
    if (!adm.ok()) return span.Close(std::move(adm));
    EOS_ASSIGN_OR_RETURN(LobDescriptor d, GetRootLocked(id));
    if (log_ != nullptr) log_->set_current_object(id);
    {
      ScopedFreeCapture capture(allocator_.get(), options_.mvcc);
      Status s = lob_->Append(&d, data);
      if (!s.ok()) return span.Close(std::move(s));
      pending_retired_ = capture.TakeCaptured();
    }
    TouchLocked(id);
    Status s = PutRootLocked(id, d);
    if (!s.ok()) return span.Close(std::move(s));
    s = CommitMutationLocked(id, &commit_lsn);
    if (!s.ok()) return span.Close(std::move(s));
  }
  return span.Close(SyncCommit(commit_lsn));
}

Status Database::Insert(uint64_t id, uint64_t offset, ByteView data) {
  obs::ScopedOp span("db.insert", id, device_.get());
  uint64_t commit_lsn = 0;
  {
    ExclusiveLatchGuard guard(dir_latch_);
    Status adm = allocator_->AdmitMutation();
    if (!adm.ok()) return span.Close(std::move(adm));
    EOS_ASSIGN_OR_RETURN(LobDescriptor d, GetRootLocked(id));
    if (log_ != nullptr) log_->set_current_object(id);
    {
      ScopedFreeCapture capture(allocator_.get(), options_.mvcc);
      Status s = lob_->Insert(&d, offset, data);
      if (!s.ok()) return span.Close(std::move(s));
      pending_retired_ = capture.TakeCaptured();
    }
    TouchLocked(id);
    Status s = PutRootLocked(id, d);
    if (!s.ok()) return span.Close(std::move(s));
    s = CommitMutationLocked(id, &commit_lsn);
    if (!s.ok()) return span.Close(std::move(s));
  }
  return span.Close(SyncCommit(commit_lsn));
}

Status Database::Delete(uint64_t id, uint64_t offset, uint64_t n) {
  obs::ScopedOp span("db.delete", id, device_.get());
  uint64_t commit_lsn = 0;
  {
    ExclusiveLatchGuard guard(dir_latch_);
    EOS_ASSIGN_OR_RETURN(LobDescriptor d, GetRootLocked(id));
    if (log_ != nullptr) log_->set_current_object(id);
    // Deletes net-free storage, so they are always admitted — and their
    // transient allocations (subtree rebuilds, node shadows) may draw on the
    // emergency reserve: refusing the one operation that reclaims space
    // would wedge a full volume.
    SegmentAllocator::EmergencyScope emergency;
    {
      ScopedFreeCapture capture(allocator_.get(), options_.mvcc);
      Status s = lob_->Delete(&d, offset, n);
      if (!s.ok()) return span.Close(std::move(s));
      pending_retired_ = capture.TakeCaptured();
    }
    TouchLocked(id);
    Status s = PutRootLocked(id, d);
    if (!s.ok()) return span.Close(std::move(s));
    s = CommitMutationLocked(id, &commit_lsn);
    if (!s.ok()) return span.Close(std::move(s));
  }
  return span.Close(SyncCommit(commit_lsn));
}

Status Database::Replace(uint64_t id, uint64_t offset, ByteView data) {
  obs::ScopedOp span("db.replace", id, device_.get());
  uint64_t commit_lsn = 0;
  {
    ExclusiveLatchGuard guard(dir_latch_);
    // Replace rewrites bytes in place and allocates nothing, but it is
    // still a logged user mutation; only reads and deletes stay admitted
    // when full. (Under mvcc it *does* allocate: copy-on-write leaves.)
    Status adm = allocator_->AdmitMutation();
    if (!adm.ok()) return span.Close(std::move(adm));
    EOS_ASSIGN_OR_RETURN(LobDescriptor d, GetRootLocked(id));
    if (log_ != nullptr) log_->set_current_object(id);
    {
      ScopedFreeCapture capture(allocator_.get(), options_.mvcc);
      Status s = lob_->Replace(&d, offset, data);
      if (!s.ok()) return span.Close(std::move(s));
      pending_retired_ = capture.TakeCaptured();
    }
    TouchLocked(id);
    Status s = PutRootLocked(id, d);
    if (!s.ok()) return span.Close(std::move(s));
    s = CommitMutationLocked(id, &commit_lsn);
    if (!s.ok()) return span.Close(std::move(s));
  }
  return span.Close(SyncCommit(commit_lsn));
}

StatusOr<LobStats> Database::ObjectStats(uint64_t id) {
  SharedLatchGuard guard(dir_latch_);
  EOS_ASSIGN_OR_RETURN(LobDescriptor d, GetRootLocked(id));
  return lob_->Stats(d);
}

Status Database::FlushLocked() {
  // A half-initialized Database (failed Open) has nothing to flush.
  if (pager_ == nullptr || allocator_ == nullptr) return Status::OK();
  EOS_RETURN_IF_ERROR(WriteSuperblock());
  EOS_RETURN_IF_ERROR(pager_->FlushAll());
  return device_->Sync();
}

Status Database::Flush() {
  ExclusiveLatchGuard guard(dir_latch_);
  return FlushLocked();
}

Status Database::CheckpointLocked() {
  // Checkpointing *releases* space; it must never be refused for lack of it.
  SegmentAllocator::EmergencyScope emergency;
  // Version GC first: extents whose last pinning snapshot closed flow
  // through the normal free path here, landing in the checkpoint free list
  // below so this very checkpoint reclaims them.
  EOS_RETURN_IF_ERROR(DrainVersionGcLocked());
  EOS_RETURN_IF_ERROR(FlushLocked());
  // Every root that could reach the parked segments is durably superseded
  // now; detach the interceptor so the frees reach the buddy system.
  FreeInterceptor* saved = allocator_->free_interceptor();
  allocator_->set_free_interceptor(nullptr);
  Status s;
  // Extents a reservation unwind could not return (volume outage) retry
  // first: no root references them, so they may only ever reach the buddy
  // maps — never a transactional free list a failed op would drop.
  std::vector<Extent> unwound = allocator_->TakeDeferredUnwindFrees();
  for (size_t i = 0; i < unwound.size(); ++i) {
    s = allocator_->Free(unwound[i]);
    if (!s.ok()) {
      for (size_t j = i; j < unwound.size(); ++j) {
        allocator_->DeferUnwindFree(unwound[j]);
      }
      break;
    }
  }
  if (s.ok() && deferred_frees_ != nullptr) {
    std::vector<Extent> parked = deferred_frees_->TakeAll();
    for (size_t i = 0; i < parked.size(); ++i) {
      s = allocator_->Free(parked[i]);
      if (!s.ok()) {
        // Re-park the failed extent and everything behind it: a free that
        // a volume outage refused must stay on the checkpoint list for the
        // next attempt, not fall off into a leak.
        for (size_t j = i; j < parked.size(); ++j) {
          deferred_frees_->InterceptFree(parked[j]);
        }
        break;
      }
    }
  }
  allocator_->set_free_interceptor(saved);
  return s;
}

Status Database::Checkpoint() {
  ExclusiveLatchGuard guard(dir_latch_);
  return CheckpointLocked();
}

Status Database::Recover(const std::vector<LogRecord>& log) {
  ExclusiveLatchGuard guard(dir_latch_);
  Status s = RecoverImpl(log);
  if (!s.ok()) {
    // A failed recovery is as fatal as storage gets: the volume cannot be
    // brought to a consistent state. Leave the black box behind.
    obs::RecordEvent(obs::EventKind::kFatal, "db.recover", /*a=*/0, /*b=*/0,
                     /*c=*/0, /*ok=*/false);
    obs::DumpPostMortemBestEffort("recover_failed");
  }
  return s;
}

Status Database::RecoverImpl(const std::vector<LogRecord>& log) {
  obs::ScopedOp span("db.recover", 0, device_.get());
  if (options_.mvcc) {
    // Recovery rebuilds the allocation maps from durable reachability;
    // volatile version chains reference storage those maps would reclaim,
    // so a snapshot surviving across recovery would read freed pages.
    if (HasOpenPins()) {
      return span.Close(
          Status::Busy("open snapshots pin pre-recovery versions; release "
                       "all snapshots before Recover()"));
    }
    LatchGuard vguard(versions_latch_);
    versions_.clear();
    gc_ready_.clear();
    pending_retired_.clear();
  }
  if (cache_ != nullptr) {
    // Recovery may rewrite object content without advancing the in-memory
    // version tags (SeedVersionChains restarts every chain at vseq 1, and
    // the non-mvcc generations describe pre-crash mutations); every cached
    // image is suspect, so drop them all.
    cache_->Clear();
    cache_gen_.clear();
  }
  // Deserialize every durable root. These are trustworthy: write-through
  // ordering guarantees a durable root only references durable pages.
  std::map<uint64_t, LobDescriptor> roots;
  for (const auto& [id, root] : directory_) {
    EOS_ASSIGN_OR_RETURN(LobDescriptor d, LobDescriptor::Deserialize(root));
    roots[id] = d;
  }

  // Phase 1: the allocation maps themselves may lag or lead the roots
  // arbitrarily (their page writes raced the crash), so discard them and
  // rebuild from reachability.
  std::vector<Extent> live;
  if (!dir_object_.empty()) {
    Status s = lob_->CollectExtents(dir_object_, &live);
    if (!s.ok()) return span.Close(std::move(s));
  }
  for (auto& [id, d] : roots) {
    Status s = lob_->CollectExtents(d, &live);
    if (!s.ok()) return span.Close(std::move(s));
  }
  Status s = allocator_->WipeAndRebuild(live);
  if (!s.ok()) return span.Close(std::move(s));

  // Phase 2: objects only the log knows about (their creation never became
  // durable) start from an empty root; RecoverObject leaves them empty
  // unless the log carries a commit for them.
  for (const LogRecord& r : log) {
    if (r.object_id == 0) continue;
    if (roots.find(r.object_id) == roots.end()) {
      roots[r.object_id] = lob_->CreateEmpty();
    }
  }

  // Phase 3: per object, redo the committed tail and remove in-flight
  // effects.
  Recovery rec(lob_.get());
  for (auto& [id, d] : roots) {
    s = rec.RecoverObject(&d, id, log);
    if (!s.ok()) return span.Close(std::move(s));
  }

  // Phase 4: rebuild the directory. An object survives recovery if its
  // last committed record is not a destroy, or — when the log holds no
  // committed record for it — if the durable directory listed it (i.e. it
  // was untouched since the last checkpoint, or an uncommitted destroy had
  // already rewritten the directory).
  std::vector<std::pair<uint64_t, Bytes>> old_directory;
  old_directory.swap(directory_);
  for (auto& [id, d] : roots) {
    uint64_t commit_lsn = Recovery::LastCommitLsn(id, log);
    bool has_committed = false;
    bool destroyed = false;
    for (const LogRecord& r : log) {
      if (r.object_id != id || r.op == LogOp::kCommit) continue;
      if (r.lsn > commit_lsn) break;
      has_committed = true;
      destroyed = (r.op == LogOp::kDestroy);
    }
    bool keep;
    if (has_committed) {
      keep = !destroyed;
    } else {
      keep = std::any_of(old_directory.begin(), old_directory.end(),
                         [id = id](const auto& e) { return e.first == id; });
    }
    if (keep) directory_.emplace_back(id, d.Serialize());
    if (id >= next_object_id_) next_object_id_ = id + 1;
  }
  s = SaveDirectory();
  if (!s.ok()) return span.Close(std::move(s));
  s = CheckpointLocked();
  if (!s.ok()) return span.Close(std::move(s));
  // The recovered directory is the ground truth now; every chain restarts
  // from its durable root.
  if (options_.mvcc) SeedVersionChains();
  return span.Close(Status::OK());
}

Status Database::CheckIntegrity() {
  SharedLatchGuard guard(dir_latch_);
  EOS_RETURN_IF_ERROR(allocator_->CheckInvariants());
  for (const auto& [id, root] : directory_) {
    EOS_ASSIGN_OR_RETURN(LobDescriptor d, LobDescriptor::Deserialize(root));
    EOS_RETURN_IF_ERROR(lob_->CheckInvariants(d));
  }
  if (!dir_object_.empty()) {
    EOS_RETURN_IF_ERROR(lob_->CheckInvariants(dir_object_));
  }
  return Status::OK();
}

Status Database::LeakCheck(LeakCheckReport* report) {
  // Exclusive: a mutation between the reference walk and the per-page
  // sweep would report its transient state as a leak.
  ExclusiveLatchGuard guard(dir_latch_);
  *report = LeakCheckReport{};
  // 1. Everything a root can reach, plus checkpoint-parked frees (those
  //    are allocated on purpose until the next Checkpoint drains them).
  std::vector<Extent> refs;
  if (!dir_object_.empty()) {
    EOS_RETURN_IF_ERROR(lob_->CollectExtents(dir_object_, &refs));
  }
  for (const auto& [id, root] : directory_) {
    EOS_ASSIGN_OR_RETURN(LobDescriptor d, LobDescriptor::Deserialize(root));
    EOS_RETURN_IF_ERROR(lob_->CollectExtents(d, &refs));
  }
  if (deferred_frees_ != nullptr) {
    for (const Extent& e : deferred_frees_->parked_extents()) {
      refs.push_back(e);
    }
  }
  // Unwind-failed frees are likewise allocated on purpose until a
  // checkpoint manages to return them to the buddy maps.
  for (const Extent& e : allocator_->deferred_unwind_frees()) {
    refs.push_back(e);
  }
  // 1b. Version-chain coverage (MVCC): superseded version roots, their
  //     retire batches, and extents staged for version GC are allocated on
  //     purpose while snapshots may still read them. Shadowing means a
  //     superseded tree shares its unchanged subtrees with the current
  //     root, so these join the sweep as a second, coverage-only class —
  //     folding them into `refs` would misreport that intentional sharing
  //     as doubly-referenced storage.
  std::vector<Extent> vrefs;
  if (options_.mvcc) {
    std::vector<Bytes> vroots;
    {
      LatchGuard vguard(versions_latch_);
      for (const auto& [id, chain] : versions_) {
        for (const ObjectVersion& v : chain) {
          if (!v.dead) vroots.push_back(v.root);
          for (const Extent& e : v.retired) vrefs.push_back(e);
        }
      }
      for (const Extent& e : gc_ready_) vrefs.push_back(e);
    }
    for (const Bytes& root : vroots) {
      EOS_ASSIGN_OR_RETURN(LobDescriptor d, LobDescriptor::Deserialize(root));
      EOS_RETURN_IF_ERROR(lob_->CollectExtents(d, &vrefs));
    }
    std::sort(vrefs.begin(), vrefs.end(),
              [](const Extent& a, const Extent& b) {
                return a.first < b.first;
              });
  }
  // 2. Overlaps between references: two trees claiming the same storage.
  std::sort(refs.begin(), refs.end(), [](const Extent& a, const Extent& b) {
    return a.first < b.first;
  });
  for (size_t i = 0; i + 1 < refs.size(); ++i) {
    PageId end = refs[i].first + refs[i].pages;
    if (refs[i + 1].first < end) {
      PageId lo = refs[i + 1].first;
      PageId hi = std::min(end, refs[i + 1].first + refs[i + 1].pages);
      report->doubly_referenced.push_back(
          Extent{lo, static_cast<uint32_t>(hi - lo)});
    }
  }
  for (const Extent& e : refs) report->reachable_pages += e.pages;
  // 3. Per-page sweep of every space: a page the maps consider allocated
  //    must be covered by some reference, else it leaked. Runs of leaked
  //    pages coalesce into extents for readable reports.
  size_t ri = 0;  // refs cursor (sorted; extents never span spaces)
  size_t vi = 0;  // version-coverage cursor (sorted; overlaps allowed)
  Extent run{};
  for (uint32_t s = 0; s < allocator_->num_spaces(); ++s) {
    PageId first = allocator_->DirPage(s) + 1;
    for (PageId p = first; p < first + allocator_->geometry().space_pages;
         ++p) {
      EOS_ASSIGN_OR_RETURN(bool alloc, allocator_->IsAllocated(Extent{p, 1}));
      if (alloc) ++report->allocated_pages;
      while (ri < refs.size() && refs[ri].first + refs[ri].pages <= p) ++ri;
      bool referenced = ri < refs.size() && refs[ri].first <= p &&
                        p < refs[ri].first + refs[ri].pages;
      while (vi < vrefs.size() && vrefs[vi].first + vrefs[vi].pages <= p) ++vi;
      bool vref = vi < vrefs.size() && vrefs[vi].first <= p &&
                  p < vrefs[vi].first + vrefs[vi].pages;
      if (alloc && !referenced && !vref) {
        if (run.pages > 0 && run.first + run.pages == p) {
          ++run.pages;
        } else {
          if (run.pages > 0) report->leaked.push_back(run);
          run = Extent{p, 1};
        }
      }
    }
  }
  if (run.pages > 0) report->leaked.push_back(run);
  if (!report->leaked.empty() || !report->doubly_referenced.empty()) {
    return Status::Corruption(
        "leak check failed: " + std::to_string(report->leaked.size()) +
        " leaked extent run(s), " +
        std::to_string(report->doubly_referenced.size()) +
        " doubly-referenced extent(s)");
  }
  return Status::OK();
}

Status Database::Scrub(ScrubReport* report) {
  // Shared for the whole pass: concurrent readers keep running (the
  // integrity suite races them on purpose), while mutators — including
  // defrag migrations — wait rather than free pages mid-walk. The flush
  // below only touches the pager and superblock, which no reader does.
  SharedLatchGuard guard(dir_latch_);
  obs::ScopedOp span("db.scrub", 0, device_.get());
  // On a volume set, scrub reads consult both mirror copies and repair the
  // bad one from the good one instead of reporting an issue.
  VolumeRepairScope repair_scope(volume_set_);
  const uint64_t repaired_before =
      volume_set_ != nullptr ? volume_set_->repaired_pages() : 0;
  auto fill_repaired = [&] {
    if (volume_set_ != nullptr) {
      report->repaired_from_replica +=
          volume_set_->repaired_pages() - repaired_before;
    }
  };
  // Scrub reads the device directly; make it current first.
  Status s = FlushLocked();
  if (!s.ok()) return span.Close(std::move(s));
  static obs::Counter* verified_counter =
      obs::MetricsRegistry::Default().counter(obs::kScrubPagesVerified);
  static obs::Counter* corrupt_counter =
      obs::MetricsRegistry::Default().counter(obs::kScrubCorruptPages);
  Bytes buf(device_->page_size());
  auto probe = [&](PageId page, PageRole role) {
    Status ps = device_->ReadPages(page, 1, buf.data());
    if (ps.ok()) {
      ++report->pages_verified;
      verified_counter->Inc();
    } else {
      report->issues.push_back(
          ScrubIssue{0, role, page, ps.message()});
      corrupt_counter->Inc();
    }
  };
  probe(kSuperblockPage, PageRole::kSuperblock);
  for (uint32_t sp = 0; sp < allocator_->num_spaces(); ++sp) {
    probe(allocator_->DirPage(sp), PageRole::kAllocatorMap);
  }
  if (!dir_object_.empty()) {
    size_t before = report->issues.size();
    s = lob_->ScrubObject(dir_object_, 0, report);
    if (!s.ok()) {
      fill_repaired();
      return span.Close(std::move(s));
    }
    for (size_t i = before; i < report->issues.size(); ++i) {
      report->issues[i].role = PageRole::kDirectory;
    }
  }
  s = ScrubObjectsLocked(report);
  fill_repaired();
  return span.Close(std::move(s));
}

// The per-object leg of Scrub(). On a multi-member volume set the walk is
// read-only device traffic spread across independent spindles, so it fans
// out over a few worker threads (each with its own repair scope and
// report, merged afterward); otherwise it runs inline.
Status Database::ScrubObjectsLocked(ScrubReport* report) {
  std::vector<std::pair<uint64_t, Bytes>> work(directory_.begin(),
                                               directory_.end());
  size_t threads = 1;
  if (options_.parallel_io && volume_set_ != nullptr) {
    threads = std::min<size_t>({4, volume_set_->member_count(), work.size()});
  }
  if (threads <= 1) {
    for (const auto& [id, root] : work) {
      EOS_ASSIGN_OR_RETURN(LobDescriptor d, LobDescriptor::Deserialize(root));
      EOS_RETURN_IF_ERROR(lob_->ScrubObject(d, id, report));
    }
    return Status::OK();
  }
  std::vector<ScrubReport> parts(threads);
  std::vector<Status> results(threads, Status::OK());
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      // The repair scope is thread-local; each worker installs its own.
      VolumeRepairScope scope(volume_set_);
      for (size_t i = t; i < work.size(); i += threads) {
        auto d = LobDescriptor::Deserialize(work[i].second);
        if (!d.ok()) {
          results[t] = d.status();
          return;
        }
        Status s = lob_->ScrubObject(*d, work[i].first, &parts[t]);
        if (!s.ok()) {
          results[t] = std::move(s);
          return;
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  for (size_t t = 0; t < threads; ++t) {
    report->pages_verified += parts[t].pages_verified;
    report->issues.insert(report->issues.end(), parts[t].issues.begin(),
                          parts[t].issues.end());
    EOS_RETURN_IF_ERROR(results[t]);
  }
  return Status::OK();
}

Status Database::RepairObject(uint64_t id) {
  ExclusiveLatchGuard guard(dir_latch_);
  obs::ScopedOp span("db.repair_object", id, device_.get());
  // Salvage reads heal from the mirror copy where one exists, so holes are
  // zero-filled only when no replica survives either.
  VolumeRepairScope repair_scope(volume_set_);
  if (options_.mvcc && HasOpenPins()) {
    // The rebuild below reclaims everything unreachable from current
    // roots, which includes whatever superseded versions still reference.
    return span.Close(
        Status::Busy("open snapshots pin superseded versions; release all "
                     "snapshots before RepairObject()"));
  }
  EOS_ASSIGN_OR_RETURN(LobDescriptor d, GetRootLocked(id));
  std::vector<HoleRange> holes;
  auto salvaged = lob_->Salvage(d, &holes);
  if (!salvaged.ok()) return span.Close(salvaged.status());
  Bytes content = std::move(salvaged).value();

  // Rewrite into fresh storage. Directory bookkeeping is internal, and so
  // is the salvage rewrite — neither belongs in the operation log.
  ScopedDirLogSuspend suspend(lob_.get());
  EOS_ASSIGN_OR_RETURN(LobDescriptor repaired, lob_->CreateFrom(content));
  Status s = Status::OK();
  for (auto& [oid, root] : directory_) {
    if (oid == id) {
      root = repaired.Serialize();
      break;
    }
  }
  if (holes.empty()) {
    holes_.erase(id);
  } else {
    holes_[id] = std::move(holes);
  }
  s = SaveDirectory();
  if (!s.ok()) return span.Close(std::move(s));

  // The old tree cannot be freed *through* — its corrupt pages are exactly
  // why we are here — so reclaim by rebuilding the allocation maps from
  // reachability, as crash recovery does. Parked deferred frees describe
  // extents by the same unreachable trees; drop them (WipeAndRebuild
  // frees everything unreachable anyway, and the roots become durable at
  // the Flush below, so early reuse is safe).
  if (deferred_frees_ != nullptr) (void)deferred_frees_->TakeAll();
  // Version chains reference the same untrusted trees; with no pins open
  // (checked above) they are dropped outright and reseeded from the
  // repaired directory once the rebuild is durable.
  if (options_.mvcc) {
    LatchGuard vguard(versions_latch_);
    versions_.clear();
    gc_ready_.clear();
    pending_retired_.clear();
  }
  if (cache_ != nullptr) {
    // SeedVersionChains below restarts every chain at vseq 1, so stale
    // images of *any* object could alias the reseeded tags.
    cache_->Clear();
    cache_gen_.clear();
  }
  std::vector<Extent> live;
  if (!dir_object_.empty()) {
    s = lob_->CollectExtents(dir_object_, &live);
    if (!s.ok()) return span.Close(std::move(s));
  }
  for (const auto& [oid, root] : directory_) {
    EOS_ASSIGN_OR_RETURN(LobDescriptor od, LobDescriptor::Deserialize(root));
    s = lob_->CollectExtents(od, &live);
    if (!s.ok()) return span.Close(std::move(s));
  }
  s = allocator_->WipeAndRebuild(live);
  if (!s.ok()) return span.Close(std::move(s));
  s = FlushLocked();
  if (!s.ok()) return span.Close(std::move(s));
  if (options_.mvcc) SeedVersionChains();
  static obs::Counter* repaired_counter =
      obs::MetricsRegistry::Default().counter(obs::kScrubRepairedObjects);
  repaired_counter->Inc();
  return span.Close(Status::OK());
}

std::vector<HoleRange> Database::GetHoles(uint64_t id) const {
  SharedLatchGuard guard(dir_latch_);
  auto it = holes_.find(id);
  return it == holes_.end() ? std::vector<HoleRange>{} : it->second;
}

void Database::AttachLog(LogManager* log) {
  ExclusiveLatchGuard guard(dir_latch_);
  log_ = log;
  lob_->set_log_manager(log);
}

// ----- snapshot MVCC (DESIGN.md §13) -----------------------------------------

Snapshot& Snapshot::operator=(Snapshot&& o) noexcept {
  if (this != &o) {
    Release();
    db_ = o.db_;
    object_id_ = o.object_id_;
    vseq_ = o.vseq_;
    lsn_ = o.lsn_;
    root_ = std::move(o.root_);
    o.db_ = nullptr;
  }
  return *this;
}

void Snapshot::Release() {
  if (db_ == nullptr) return;
  db_->ReleaseSnapshotPin(object_id_, vseq_);
  db_ = nullptr;
}

uint64_t Database::CacheVseqLocked(uint64_t id) {
  if (cache_ == nullptr) return 0;
  if (options_.mvcc) {
    LatchGuard vguard(versions_latch_);
    auto it = versions_.find(id);
    if (it == versions_.end() || it->second.empty() ||
        it->second.back().dead) {
      return 0;
    }
    return it->second.back().vseq;
  }
  auto it = cache_gen_.find(id);
  return it == cache_gen_.end() ? 1 : it->second;
}

void Database::SeedVersionChains() {
  LatchGuard vguard(versions_latch_);
  versions_.clear();
  gc_ready_.clear();
  pending_retired_.clear();
  for (const auto& [id, root] : directory_) {
    ObjectVersion v;
    v.vseq = 1;
    v.root = root;
    auto d = LobDescriptor::Deserialize(root);
    if (d.ok()) v.lsn = d.value().lsn;
    versions_[id].push_back(std::move(v));
  }
}

void Database::PublishVersion(uint64_t id, const Bytes& root, uint64_t lsn,
                              bool dead) {
  static obs::Counter* published =
      obs::MetricsRegistry::Default().counter(obs::kTxnVersionsPublished);
  std::vector<Extent> retired = std::move(pending_retired_);
  pending_retired_.clear();
  LatchGuard vguard(versions_latch_);
  VersionChain& chain = versions_[id];
  ObjectVersion v;
  v.root = root;
  v.lsn = lsn;
  v.dead = dead;
  if (chain.empty()) {
    // First version (creation): nothing is superseded, so anything the
    // mutation freed was transient — collectable at the next drain.
    v.vseq = 1;
    gc_ready_.insert(gc_ready_.end(), retired.begin(), retired.end());
  } else {
    v.vseq = chain.back().vseq + 1;
    ObjectVersion& prev = chain.back();
    prev.retired.insert(prev.retired.end(), retired.begin(), retired.end());
  }
  chain.push_back(std::move(v));
  published->Inc();
  CollectChainLocked(id, &chain);
  if (chain.empty()) versions_.erase(id);
}

void Database::CollectChainLocked(uint64_t id, VersionChain* chain) {
  static obs::Counter* gcd =
      obs::MetricsRegistry::Default().counter(obs::kTxnVersionsGcd);
  bool advanced = false;
  while (!chain->empty() && chain->front().pins == 0 &&
         (chain->size() > 1 || chain->front().dead)) {
    ObjectVersion& v = chain->front();
    gc_ready_.insert(gc_ready_.end(), v.retired.begin(), v.retired.end());
    chain->pop_front();
    gcd->Inc();
    advanced = true;
  }
  if (advanced && cache_ != nullptr) {
    // The collected versions can never be pinned again; their cached
    // extent images are unreachable and only waste budget — drop them.
    // Everything at or above the surviving front stays valid.
    cache_->InvalidateObjectBelow(
        id, chain->empty() ? ~uint64_t{0} : chain->front().vseq);
  }
}

void Database::ReleaseSnapshotPin(uint64_t id, uint64_t vseq) {
  static obs::Gauge* open_gauge =
      obs::MetricsRegistry::Default().gauge(obs::kTxnSnapshotsOpen);
  LatchGuard vguard(versions_latch_);
  auto it = versions_.find(id);
  if (it != versions_.end()) {
    for (ObjectVersion& v : it->second) {
      if (v.vseq == vseq) {
        if (v.pins > 0) --v.pins;
        break;
      }
    }
    CollectChainLocked(id, &it->second);
    if (it->second.empty()) versions_.erase(it);
  }
  open_gauge->Add(-1);
}

Status Database::DrainVersionGcLocked() {
  if (!options_.mvcc) return Status::OK();
  std::vector<Extent> ready;
  {
    LatchGuard vguard(versions_latch_);
    for (auto it = versions_.begin(); it != versions_.end();) {
      CollectChainLocked(it->first, &it->second);
      it = it->second.empty() ? versions_.erase(it) : std::next(it);
    }
    ready.swap(gc_ready_);
  }
  if (ready.empty()) return Status::OK();
  // GC *is* the release path; it must never be refused for lack of space.
  SegmentAllocator::EmergencyScope emergency;
  for (size_t i = 0; i < ready.size(); ++i) {
    Status s = allocator_->Free(ready[i]);
    if (!s.ok()) {
      // Re-park the rest (this extent included): the storage stays
      // allocated — a leak-check finding at worst, never a dangling
      // reference.
      LatchGuard vguard(versions_latch_);
      gc_ready_.insert(gc_ready_.end(), ready.begin() + i, ready.end());
      return s;
    }
  }
  return Status::OK();
}

bool Database::HasOpenPins() {
  LatchGuard vguard(versions_latch_);
  for (const auto& [id, chain] : versions_) {
    for (const ObjectVersion& v : chain) {
      if (v.pins > 0) return true;
    }
  }
  return false;
}

Status Database::CommitMutationLocked(uint64_t id, uint64_t* commit_lsn) {
  if (!options_.mvcc || log_ == nullptr) return Status::OK();
  return log_->LogCommitMarker(id, commit_lsn);
}

Status Database::SyncCommit(uint64_t commit_lsn) {
  if (commit_lsn == 0 || log_ == nullptr) return Status::OK();
  return log_->SyncToLsn(commit_lsn);
}

StatusOr<Snapshot> Database::BeginSnapshot(uint64_t id) {
  if (!options_.mvcc) {
    return Status::InvalidArgument("snapshots require DatabaseOptions::mvcc");
  }
  static obs::Gauge* open_gauge =
      obs::MetricsRegistry::Default().gauge(obs::kTxnSnapshotsOpen);
  LatchGuard vguard(versions_latch_);
  auto it = versions_.find(id);
  if (it == versions_.end() || it->second.empty() || it->second.back().dead) {
    return Status::NotFound("object " + std::to_string(id));
  }
  ObjectVersion& v = it->second.back();
  EOS_ASSIGN_OR_RETURN(LobDescriptor d, LobDescriptor::Deserialize(v.root));
  ++v.pins;
  open_gauge->Add(1);
  Snapshot snap;
  snap.db_ = this;
  snap.object_id_ = id;
  snap.vseq_ = v.vseq;
  snap.lsn_ = v.lsn;
  snap.root_ = std::move(d);
  return snap;
}

StatusOr<Bytes> Database::SnapshotRead(const Snapshot& snap, uint64_t offset,
                                       uint64_t n) {
  if (!snap.valid()) {
    return Status::InvalidArgument("snapshot is released");
  }
  // No dir_latch_: the pinned root is immutable and version GC keeps every
  // page it references allocated, so concurrent mutators are invisible
  // here. Page-level consistency is the pager's own latching.
  obs::ScopedOp span("db.snapshot_read", snap.object_id(), device_.get());
  // The pinned version is immutable, so its cached extents can never be
  // stale — hits are lock-free memcpys keyed by the snapshot's own vseq.
  ScopedExtentCacheRef cache_scope(cache_.get(), snap.object_id(),
                                   snap.vseq());
  Bytes out;
  Status s = lob_->Read(snap.root(), offset, n, &out);
  if (!s.ok()) return span.Close(std::move(s));
  return out;
}

StatusOr<std::vector<Database::VersionInfo>> Database::ListVersions(
    uint64_t id) {
  if (!options_.mvcc) {
    SharedLatchGuard guard(dir_latch_);
    EOS_ASSIGN_OR_RETURN(LobDescriptor d, GetRootLocked(id));
    VersionInfo info;
    info.vseq = 1;
    info.lsn = d.lsn;
    info.size = d.size();
    if (!d.root.entries.empty()) info.root_page = d.root.entries[0].page;
    info.current = true;
    return std::vector<VersionInfo>{info};
  }
  LatchGuard vguard(versions_latch_);
  auto it = versions_.find(id);
  if (it == versions_.end() || it->second.empty()) {
    return Status::NotFound("object " + std::to_string(id));
  }
  std::vector<VersionInfo> out;
  out.reserve(it->second.size());
  for (const ObjectVersion& v : it->second) {
    VersionInfo info;
    info.vseq = v.vseq;
    info.lsn = v.lsn;
    info.pins = v.pins;
    info.retired_extents = static_cast<uint32_t>(v.retired.size());
    info.current = (&v == &it->second.back());
    info.dead = v.dead;
    if (!v.dead) {
      EOS_ASSIGN_OR_RETURN(LobDescriptor d,
                           LobDescriptor::Deserialize(v.root));
      info.size = d.size();
      if (!d.root.entries.empty()) info.root_page = d.root.entries[0].page;
    }
    out.push_back(info);
  }
  return out;
}

// ----- online defragmentation (DESIGN.md §12) --------------------------------

Status Database::DefragTick(DefragReport* report) {
  if (defrag_ == nullptr) {
    return Status::InvalidArgument("database not initialized");
  }
  return defrag_->Tick(report);
}

StatusOr<std::vector<DefragHost::ObjectFacts>> Database::CollectObjectFacts() {
  SharedLatchGuard guard(dir_latch_);
  std::vector<DefragHost::ObjectFacts> facts;
  facts.reserve(directory_.size());
  for (const auto& [id, root] : directory_) {
    EOS_ASSIGN_OR_RETURN(LobDescriptor d, LobDescriptor::Deserialize(root));
    EOS_ASSIGN_OR_RETURN(LobStats stats, lob_->Stats(d));
    DefragHost::ObjectFacts f;
    f.id = id;
    f.stats = stats;
    auto heat = last_mutation_.find(id);
    f.last_mutation = heat == last_mutation_.end() ? 0 : heat->second;
    facts.push_back(std::move(f));
  }
  return facts;
}

uint64_t Database::MutationClock() { return mutation_clock_.load(); }

Status Database::MigrateObject(uint64_t id, uint64_t horizon,
                               uint32_t headroom_pages) {
  ExclusiveLatchGuard guard(dir_latch_);
  obs::ScopedOp span("db.defrag_migrate", id, device_.get());
  // The cold classification came from an earlier unlatched scan; an object
  // mutated (or dropped) since is no longer the one that was scored.
  auto heat = last_mutation_.find(id);
  if (heat != last_mutation_.end() && heat->second > horizon) {
    return span.Close(Status::Busy("object went hot before migration"));
  }
  Status adm = allocator_->AdmitMutation(std::max<uint32_t>(1, headroom_pages));
  if (!adm.ok()) return span.Close(std::move(adm));
  EOS_ASSIGN_OR_RETURN(LobDescriptor d, GetRootLocked(id));
  // Reorganize is content-neutral and unlogged: it streams the bytes into
  // fresh maximal segments, keeps the root LSN, and frees (crash-safe:
  // parks) the old tree, so a crash mid-migration recovers from the old
  // root plus the unchanged WAL. No TouchLocked — a migration must not
  // make its object look hot.
  {
    ScopedFreeCapture capture(allocator_.get(), options_.mvcc);
    Status s = lob_->Reorganize(&d);
    if (!s.ok()) return span.Close(std::move(s));
    pending_retired_ = capture.TakeCaptured();
  }
  return span.Close(PutRootLocked(id, d));
}

Status Database::ReleaseMigratedStorage() {
  // Non-crash-safe frees already reached the buddy system inside
  // Reorganize; there is nothing parked to drain.
  if (deferred_frees_ == nullptr) return Status::OK();
  ExclusiveLatchGuard guard(dir_latch_);
  return CheckpointLocked();
}

void Database::RefreshFragGauges() {
  if (allocator_ != nullptr) (void)allocator_->FragStats();
}

}  // namespace eos
