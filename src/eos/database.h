#ifndef EOS_EOS_DATABASE_H_
#define EOS_EOS_DATABASE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "buddy/segment_allocator.h"
#include "cache/extent_cache.h"
#include "common/bytes.h"
#include "common/latch.h"
#include "common/retry.h"
#include "common/status.h"
#include "io/page_device.h"
#include "io/pager.h"
#include "io/volume_set.h"
#include "lob/defrag.h"
#include "lob/lob_manager.h"
#include "obs/snapshot.h"
#include "txn/log_manager.h"

namespace eos {

class VerifiedPageDevice;

// Top-level EOS storage facade: one volume (file-backed or in-memory)
// containing a superblock, a sequence of buddy segment spaces, and a
// persistent object directory mapping object ids to their large-object
// roots. The paper leaves root placement to the client; Database is one
// such client — it keeps all roots in a directory that is itself a large
// object whose root lives in the superblock.
struct DatabaseOptions {
  uint32_t page_size = 4096;
  uint32_t space_pages = 0;  // 0 = as many as one directory page can map
  uint32_t initial_spaces = 1;
  size_t pager_frames = 256;
  LobConfig lob;

  // Crash-safe configuration (Section 4.5 + DESIGN.md "Testing & fault
  // model"): the pager runs write-through so pages are durable before any
  // page referencing them is written, index nodes are shadowed, and every
  // freed segment is parked until the next Checkpoint() so no page a
  // durable root can reach is ever reused early. Costs extra writes;
  // recovery via Recover() then restores exactly the committed state after
  // a crash at any write boundary.
  bool crash_safe = false;

  // Integrity layer (DESIGN.md "Integrity & degraded operation"): the
  // device is wrapped in a VerifiedPageDevice, so every page carries a
  // 16-byte CRC32C trailer sealed on write and verified on read — the
  // usable page size becomes page_size - 16. Implied by crash_safe: a torn
  // or rotted page must fail closed, never read back as silent garbage.
  // Volumes remember the choice via the superblock's format epoch, so
  // Open()/OpenOnDevice() stack the layer automatically.
  bool checksums = false;

  // Bounds re-reads of transiently failing transfers (and re-tries of
  // failing writes) under the verified device. Defaults retry immediately;
  // set base_backoff_us for real hardware.
  RetryPolicy io_retry;

  // Degraded operation (DESIGN.md "Degraded operation under resource
  // exhaustion"): pages held back from user allocations so directory
  // saves, WAL appends and Checkpoint() still complete on a full volume.
  // New mutations are refused with typed NoSpace once the free-page count
  // can no longer stay above this floor; reads and deletes are always
  // admitted. 0 disables admission control.
  uint32_t emergency_reserve_pages = 0;

  // Parallel I/O (DESIGN.md "Parallel I/O and zero-copy paths"): attach
  // the process-wide IoExecutor so multi-segment reads fan their device
  // transfers out to worker threads. Off by default — inline transfers
  // keep the device's seek/transfer accounting deterministic, which the
  // cost-model benches and tests measure. The pool size follows
  // EOS_IO_THREADS (default min(4, hardware concurrency)).
  bool parallel_io = false;

  // Periodic observability export (DESIGN.md "Observability"): a non-zero
  // interval starts a background obs::SnapshotWriter that rewrites the
  // volume's "<path>.obs.json" sidecar every interval (plus once at open
  // and once at close), so `eos_inspect top` can watch a live process.
  // File-backed volumes only — in-memory volumes have no sidecar path.
  uint64_t obs_snapshot_interval_ms = 0;

  // Online defragmentation (DESIGN.md §12): `defrag.enabled` starts a
  // background thread that periodically migrates cold, scattered objects
  // back to their ideal layout. DefragTick() drives single deterministic
  // passes regardless of the flag.
  DefragOptions defrag;

  // Multi-version concurrency (DESIGN.md §13): every committed mutation
  // publishes the object's new root into an in-memory version chain, and
  // BeginSnapshot()/SnapshotRead() traverse a pinned version without
  // touching the directory latch — readers never wait on writers. Implies
  // index-node shadowing and copy-on-write Replace so no page a pinned
  // version references is ever overwritten in place; superseded storage is
  // reclaimed only once no snapshot pins it (through the CheckpointFreeList
  // when combined with crash_safe). Mutations additionally group-commit
  // their WAL markers (LogManager::LogCommitDurable) when a log is
  // attached.
  bool mvcc = false;

  // Hot-object DRAM cache tier (DESIGN.md §14): a non-zero byte budget
  // attaches an ExtentCache above the leaf-read path. Read()/SnapshotRead()
  // hits are served as a zero-I/O memcpy off the cached immutable extent
  // image; misses fill through the ordinary read machinery. Entries are
  // keyed by (object id, version sequence, extent), so a published version's
  // cached bytes can never be stale; superseded versions are invalidated as
  // version GC retires them (per-object generations without mvcc).
  size_t cache_bytes = 0;
  // Compress probation-resident cache entries (common/compress.h): the cold
  // tail of the cache packs 2-4x more logical bytes per DRAM byte, while
  // promoted hot entries stay raw (hits remain a pure memcpy).
  bool cache_compression = true;
};

// FreeInterceptor that parks every freed extent until the next
// Checkpoint() drains it: in crash-safe mode nothing a durable root can
// reach may be reused before a newer root is durable ([Lehm89] release
// locks at volume scope).
class CheckpointFreeList final : public FreeInterceptor {
 public:
  bool InterceptFree(const Extent& e) override {
    parked_.push_back(e);
    return true;
  }
  std::vector<Extent> TakeAll() {
    std::vector<Extent> out;
    out.swap(parked_);
    return out;
  }
  size_t parked() const { return parked_.size(); }
  // Read-only view for the leak checker: parked extents are allocated but
  // intentionally unreachable until the next checkpoint.
  const std::vector<Extent>& parked_extents() const { return parked_; }

 private:
  std::vector<Extent> parked_;
};

class Database;

// A pinned, immutable view of one object at a committed version (MVCC,
// DESIGN.md §13). While the snapshot is open, version GC keeps every page
// its root can reach allocated, so Database::SnapshotRead() traverses it
// without taking the directory latch — concurrent writers publish newer
// versions without ever blocking or being blocked by this reader.
// Move-only; destruction (or Release()) unpins the version, making its
// superseded storage reclaimable. Must not outlive the Database.
class Snapshot {
 public:
  Snapshot() = default;
  ~Snapshot() { Release(); }
  Snapshot(Snapshot&& o) noexcept { *this = std::move(o); }
  Snapshot& operator=(Snapshot&& o) noexcept;

  Snapshot(const Snapshot&) = delete;
  Snapshot& operator=(const Snapshot&) = delete;

  bool valid() const { return db_ != nullptr; }
  uint64_t object_id() const { return object_id_; }
  // Position in the object's version chain (monotone per object).
  uint64_t vseq() const { return vseq_; }
  // LSN of the mutation that published this version.
  uint64_t lsn() const { return lsn_; }
  uint64_t size() const { return root_.size(); }
  const LobDescriptor& root() const { return root_; }

  // Unpins early; the snapshot becomes invalid.
  void Release();

 private:
  friend class Database;

  Database* db_ = nullptr;
  uint64_t object_id_ = 0;
  uint64_t vseq_ = 0;
  uint64_t lsn_ = 0;
  LobDescriptor root_;
};

// Result of Database::LeakCheck — the allocation maps cross-checked
// against object reachability.
struct LeakCheckReport {
  uint64_t allocated_pages = 0;  // pages the buddy maps consider live
  uint64_t reachable_pages = 0;  // pages some root (or parked free) covers
  // Allocated but referenced by nothing: storage lost to a bug.
  std::vector<Extent> leaked;
  // Covered by more than one reference: two trees claim the same storage.
  std::vector<Extent> doubly_referenced;
};

// Concurrency: a reader/writer latch serializes the object directory and
// every public operation — reads and stats run shared, mutations (and
// checkpoint/recovery/repair) run exclusive. That is what lets the online
// defragmenter migrate objects from a background thread while foreground
// readers keep running; per-page consistency below the latch is the
// pager's and allocator's own short-duration latches.
class Database : private DefragHost {
 public:
  static constexpr uint32_t kMagic = 0x454F5356;  // "EOSV"
  // v2 adds the format epoch to the superblock and hole maps to the
  // directory; v1 volumes (epoch 0, no checksums) still open.
  static constexpr uint32_t kVersion = 2;
  // Epoch stamped into every page trailer of a checksummed volume. 0 in
  // the superblock means the volume predates checksums (or opted out) and
  // the device is used unwrapped.
  static constexpr uint16_t kFormatEpoch = 1;
  static constexpr PageId kSuperblockPage = 0;
  static constexpr PageId kFirstSpacePage = 1;

  // Creates a new volume file (truncating any existing one).
  static StatusOr<std::unique_ptr<Database>> Create(
      const std::string& path, const DatabaseOptions& options);

  // Opens an existing volume; geometry comes from the superblock, runtime
  // knobs (pager size, LOB config) from `options`.
  static StatusOr<std::unique_ptr<Database>> Open(
      const std::string& path, const DatabaseOptions& options);

  // Volatile volume for tests, examples and benches.
  static StatusOr<std::unique_ptr<Database>> CreateInMemory(
      const DatabaseOptions& options);

  // Formats a volume on a caller-supplied device (e.g. a ChaosPageDevice
  // wrapping the real backend); the device is grown as needed.
  static StatusOr<std::unique_ptr<Database>> CreateOnDevice(
      std::unique_ptr<PageDevice> device, const DatabaseOptions& options);

  // Opens a previously formatted volume on a caller-supplied device (e.g.
  // the cloned image of a crashed chaos device).
  static StatusOr<std::unique_ptr<Database>> OpenOnDevice(
      std::unique_ptr<PageDevice> device, const DatabaseOptions& options);

  // Formats a database across N member volumes (DESIGN.md §15): each
  // member gets its own verified stack, and the logical page space is
  // placed chunk-by-chunk across them — one buddy space per chunk when
  // set_options.chunk_pages is 0 (the default), so extents never straddle
  // members. With set_options.mirrored every chunk has a replica on a
  // second member: reads fail over, writes degrade typed, and
  // Scrub/RepairObject reconstruct bad pages from the replica.
  static StatusOr<std::unique_ptr<Database>> CreateOnVolumeSet(
      std::vector<std::unique_ptr<PageDevice>> members,
      VolumeSetOptions set_options, const DatabaseOptions& options);

  // Opens a previously formatted volume set. Members must come in their
  // formatted order; placement geometry is read from the member headers.
  static StatusOr<std::unique_ptr<Database>> OpenOnVolumeSet(
      std::vector<std::unique_ptr<PageDevice>> members,
      VolumeSetOptions set_options, const DatabaseOptions& options);

  ~Database();

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // ----- object directory --------------------------------------------------

  // Creates an empty large object and returns its id.
  StatusOr<uint64_t> CreateObject();
  StatusOr<uint64_t> CreateObjectFrom(ByteView data);

  // Destroys the object's storage and removes it from the directory.
  Status DropObject(uint64_t id);

  StatusOr<LobDescriptor> GetRoot(uint64_t id);
  Status PutRoot(uint64_t id, const LobDescriptor& d);
  StatusOr<std::vector<uint64_t>> ListObjects();

  // Per-object segment size threshold hint (Section 4.4); applies to all
  // subsequent operations on `id` through this Database handle. 0 resets
  // to the manager default.
  void SetObjectThreshold(uint64_t id, uint32_t threshold_pages);

  // Rewrites the object into its optimal layout (LobManager::Reorganize).
  Status ReorganizeObject(uint64_t id);

  // ----- online defragmentation (DESIGN.md §12) ------------------------------

  // One scan-and-migrate pass of the online defragmenter: scores every
  // object's scatter, migrates the worst cold offenders within the
  // configured per-tick budget. Runs whether or not the background thread
  // is enabled; safe concurrently with any other operation.
  Status DefragTick(DefragReport* report = nullptr);

  Defragmenter* defragmenter() { return defrag_.get(); }

  // ----- convenience object operations --------------------------------------

  // ----- snapshot MVCC (DESIGN.md §13) ---------------------------------------

  // Pins the object's current committed version and returns a Snapshot
  // that reads it. Requires options.mvcc. Never blocks on writers: only
  // the (short, uncontended) version-chain latch is taken.
  StatusOr<Snapshot> BeginSnapshot(uint64_t id);

  // Reads min(n, snap.size() - offset) bytes at `offset` from the pinned
  // version, latch-free with respect to the directory: concurrent
  // mutations of the same object do not block this and are never observed
  // by it.
  StatusOr<Bytes> SnapshotRead(const Snapshot& snap, uint64_t offset,
                               uint64_t n);

  // One entry of an object's version chain, for eos_inspect and tests.
  struct VersionInfo {
    uint64_t vseq = 0;
    uint64_t lsn = 0;
    uint64_t size = 0;
    uint64_t pins = 0;
    PageId root_page = kInvalidPage;  // first child page; invalid if none
    uint32_t retired_extents = 0;     // extents parked until this version GCs
    bool current = false;
    bool dead = false;  // drop marker (object destroyed)
  };

  // The object's version chain, oldest first. Without options.mvcc the
  // directory root is reported as a single unpinned current version, so
  // `eos_inspect versions` works on any volume.
  StatusOr<std::vector<VersionInfo>> ListVersions(uint64_t id);

  StatusOr<uint64_t> Size(uint64_t id);
  StatusOr<Bytes> Read(uint64_t id, uint64_t offset, uint64_t n);
  Status Append(uint64_t id, ByteView data);
  Status Insert(uint64_t id, uint64_t offset, ByteView data);
  Status Delete(uint64_t id, uint64_t offset, uint64_t n);
  Status Replace(uint64_t id, uint64_t offset, ByteView data);
  StatusOr<LobStats> ObjectStats(uint64_t id);

  // ----- plumbing ------------------------------------------------------------

  // Flushes the pager, rewrites the superblock, syncs the device.
  Status Flush();

  // Flush(), then (crash-safe mode) returns the segments freed since the
  // last checkpoint to the buddy system — they can no longer be reached
  // from any durable root, so reuse is safe from here on.
  Status Checkpoint();

  // Crash recovery on a freshly opened volume whose superblock may lag the
  // log and whose allocation maps may be stale:
  //   1. rebuilds every space's allocation map from reachability (the
  //      directory object plus every directory root);
  //   2. per object — including ids only the log knows — redoes committed
  //      records and removes in-flight effects (Recovery::RecoverObject);
  //   3. drops objects whose last committed record is a destroy, saves the
  //      recovered directory, and checkpoints.
  // `log` is the surviving write-ahead log, in emit order.
  Status Recover(const std::vector<LogRecord>& log);

  // Buddy invariants of every space plus tree invariants of every object.
  Status CheckIntegrity();

  // Read-only audit: walks every reachable extent (directory object, all
  // object trees, checkpoint-parked frees) and compares the union against
  // the buddy allocation maps, reporting leaked and doubly-referenced
  // storage. OK with an empty report on a healthy volume; Corruption if
  // anything leaks or overlaps.
  Status LeakCheck(LeakCheckReport* report);

  // ----- scrub / quarantine / repair ----------------------------------------

  // Flushes, then verifies every reachable page by reading it back through
  // the device: superblock, each space's allocation map, the directory
  // object, and every object tree. Appends one issue per unreadable page;
  // on a verified device those pages end up quarantined as a side effect.
  Status Scrub(ScrubReport* report);

  // Rebuilds a damaged object from whatever Salvage can still read: the
  // unrecoverable byte ranges are zero-filled and recorded as the object's
  // hole map (persisted in the directory), the content is rewritten into
  // fresh storage, and the allocation maps are rebuilt from reachability —
  // the corrupt subtrees cannot be freed through, so the old pages are
  // reclaimed by rebuilding instead. Reads of the repaired object work
  // normally; GetHoles() says which bytes are fabricated zeroes.
  Status RepairObject(uint64_t id);

  // The object's persisted hole map (empty if never repaired, or repaired
  // losslessly). Ranges are advisory: they describe the bytes at repair
  // time and are not maintained through later updates.
  std::vector<HoleRange> GetHoles(uint64_t id) const;

  // Non-null iff the volume runs with the integrity layer stacked.
  VerifiedPageDevice* verified_device() { return verified_; }

  // Non-null iff the database runs on a multi-volume set (each member
  // carries its own integrity layer; verified_device() is null then).
  VolumeSetDevice* volume_set() { return volume_set_; }

  const LobDescriptor& dir_object() const { return dir_object_; }

  LobManager* lob() { return lob_.get(); }
  // Non-null iff options.cache_bytes > 0.
  ExtentCache* extent_cache() { return cache_.get(); }
  SegmentAllocator* allocator() { return allocator_.get(); }
  Pager* pager() { return pager_.get(); }
  PageDevice* device() { return device_.get(); }

  // Attaches a log manager; subsequent object operations are logged with
  // the object id (Section 4.5).
  void AttachLog(LogManager* log);

 private:
  friend class Snapshot;

  Database() = default;

  static StatusOr<std::unique_ptr<Database>> Init(
      std::unique_ptr<PageDevice> device, const DatabaseOptions& options,
      bool fresh);

  Status WriteSuperblock();
  Status ReadSuperblock(uint32_t* space_pages, uint32_t* num_spaces);

  // Recover() minus the fatal-path post-mortem dump.
  Status RecoverImpl(const std::vector<LogRecord>& log);

  // Begins periodic "<path>.obs.json" exports when the options ask for
  // them (no-op otherwise); Create/Open call this, in-memory volumes don't.
  void StartSnapshotWriter(const std::string& volume_path);

  // Largest directory root the superblock can hold.
  uint32_t DirRootSlotBytes() const;

  // v2 directory streams open with an 8-byte sentinel no v1 entry can
  // produce (object ids are monotone from 1), then a format version:
  // [sentinel u64 = ~0][version u32]
  // [id u64][root_len u32][hole_count u32][root][(off u64, len u64)...]...
  // v1 streams ([id u64][len u32][root]...) still parse.
  Status LoadDirectory();
  Status SaveDirectory();

  // ----- latch-free internals (caller holds dir_latch_) ---------------------

  StatusOr<uint64_t> CreateObjectLocked();
  StatusOr<LobDescriptor> GetRootLocked(uint64_t id);
  Status PutRootLocked(uint64_t id, const LobDescriptor& d);
  Status FlushLocked();
  Status CheckpointLocked();
  // Per-object leg of Scrub(); fans out across threads on a multi-member
  // volume set with parallel_io.
  Status ScrubObjectsLocked(ScrubReport* report);
  // Records a foreground mutation of `id` on the heat clock, so the
  // defragmenter can tell cold objects from ones still being written.
  void TouchLocked(uint64_t id);

  // The version tag Read() binds into the extent cache for `id`: the
  // chain-current vseq under mvcc, the per-object mutation generation
  // otherwise. 0 (don't cache) when the cache is off or the id is unknown.
  // Caller holds dir_latch_ (shared suffices).
  uint64_t CacheVseqLocked(uint64_t id);

  // ----- version chains (MVCC, DESIGN.md §13) --------------------------------

  // One committed version of one object. `retired` is the storage that
  // died when this version was superseded — the frees the successor's
  // commit replayed — parked here until pins reaches zero.
  struct ObjectVersion {
    uint64_t vseq = 0;
    Bytes root;  // serialized LobDescriptor; empty for a drop marker
    uint64_t lsn = 0;
    uint64_t pins = 0;
    bool dead = false;
    std::vector<Extent> retired;
  };
  using VersionChain = std::deque<ObjectVersion>;

  // Rebuilds every chain from directory_ (open, recovery): one unpinned
  // current version per object. Clears gc staging and stale capture state.
  void SeedVersionChains();
  // Appends a new current version for `id` under dir_latch_ exclusive,
  // attaching pending_retired_ to the superseded version, then drains
  // whatever became collectable into gc_ready_.
  void PublishVersion(uint64_t id, const Bytes& root, uint64_t lsn,
                      bool dead);
  // FIFO-drains the chain front (collectable = unpinned and superseded, or
  // an unpinned drop marker), staging retire batches into gc_ready_. When
  // the front advances, cached extents of the collected versions — which no
  // reader can pin anymore — are dropped from the extent cache. Caller
  // holds versions_latch_ (the cache's shard latches are leaves below it).
  void CollectChainLocked(uint64_t id, VersionChain* chain);
  // Unpin from Snapshot teardown: may run on any thread, takes only
  // versions_latch_, never calls into the allocator (a writer may have a
  // capturing interceptor installed) — collectable storage waits in
  // gc_ready_ for the next exclusive-latched drain.
  void ReleaseSnapshotPin(uint64_t id, uint64_t vseq);
  // Frees gc_ready_ through the normal allocator path (landing in the
  // CheckpointFreeList in crash-safe mode). Caller holds dir_latch_
  // exclusive with no capture scope installed.
  Status DrainVersionGcLocked();
  // True if any snapshot pin is open (mvcc only).
  bool HasOpenPins();
  // Emits the WAL commit marker for a successful mvcc mutation — under
  // dir_latch_, so the marker is ordered after the mutation's own records.
  // No-op (commit_lsn stays 0) without mvcc or an attached log.
  Status CommitMutationLocked(uint64_t id, uint64_t* commit_lsn);
  // Waits until a log sync covers `commit_lsn` (0 = nothing to wait for).
  // Called *after* releasing dir_latch_: the fsync wait is where group
  // commit batches, and holding the latch through it would serialize the
  // very committers it should batch.
  Status SyncCommit(uint64_t commit_lsn);

  // ----- DefragHost (the defragmenter's view of this database) --------------

  StatusOr<std::vector<DefragHost::ObjectFacts>> CollectObjectFacts() override;
  uint64_t MutationClock() override;
  Status MigrateObject(uint64_t id, uint64_t horizon,
                       uint32_t headroom_pages) override;
  Status ReleaseMigratedStorage() override;
  void RefreshFragGauges() override;

  DatabaseOptions options_;
  std::unique_ptr<obs::SnapshotWriter> snapshot_writer_;
  std::unique_ptr<PageDevice> device_;
  VerifiedPageDevice* verified_ = nullptr;  // aliases device_ when stacked
  VolumeSetDevice* volume_set_ = nullptr;   // aliases device_ when multi-volume
  std::unique_ptr<Pager> pager_;
  std::unique_ptr<SegmentAllocator> allocator_;
  std::unique_ptr<LobManager> lob_;
  std::unique_ptr<ExtentCache> cache_;  // options.cache_bytes > 0 only
  std::unique_ptr<CheckpointFreeList> deferred_frees_;  // crash-safe only
  LogManager* log_ = nullptr;

  uint64_t next_object_id_ = 1;
  std::map<uint64_t, uint32_t> threshold_hints_;
  // Non-mvcc cache versioning: bumped on every root publication so stale
  // cache keys die with their generation (guarded by dir_latch_).
  std::map<uint64_t, uint64_t> cache_gen_;
  LobDescriptor dir_object_;  // the directory's own root
  std::vector<std::pair<uint64_t, Bytes>> directory_;  // id -> root image
  std::map<uint64_t, std::vector<HoleRange>> holes_;   // id -> hole map

  // Reader/writer latch over the directory and all object state above;
  // shared for reads/stats, exclusive for mutations. Mutable so const
  // accessors (GetHoles) can latch.
  mutable SharedLatch dir_latch_;
  // Heat tracking for defrag cold/hot classification: every foreground
  // mutation bumps the clock and stamps its object (map guarded by
  // dir_latch_ exclusive; clock is atomic so the defragmenter can read it
  // latch-free).
  std::atomic<uint64_t> mutation_clock_{0};
  std::map<uint64_t, uint64_t> last_mutation_;
  std::unique_ptr<Defragmenter> defrag_;

  // MVCC state. versions_/gc_ready_ are guarded by versions_latch_ — a
  // leaf latch below dir_latch_ (writers hold both; BeginSnapshot and pin
  // release take only versions_latch_, which is what keeps readers off the
  // directory latch). pending_retired_ is a writer-side staging slot and
  // is guarded by dir_latch_ exclusive alone.
  std::map<uint64_t, VersionChain> versions_;
  std::vector<Extent> gc_ready_;
  mutable Latch versions_latch_;
  std::vector<Extent> pending_retired_;
};

}  // namespace eos

#endif  // EOS_EOS_DATABASE_H_
