#include "txn/release_locks.h"

#include <algorithm>
#include <cassert>
#include <functional>

#include "common/math.h"

namespace eos {

namespace {

// Ancestors of the aligned chunk (start, type) within its space: the
// enclosing aligned extents of types type+1 .. max_type.
void ForEachAncestor(PageId start, uint32_t type, uint32_t max_type,
                     const std::function<void(PageId, uint32_t)>& fn) {
  for (uint32_t t = type + 1; t <= max_type; ++t) {
    fn(start & ~((PageId{1} << t) - 1), t);
  }
}

}  // namespace

void ReleaseLockTable::LockForRelease(uint64_t txn, const Extent& extent) {
  LatchGuard g(latch_);
  by_txn_[txn].extents[extent.first] = extent;
  // Intention locks on the ancestors of every aligned chunk of the extent.
  uint64_t lo = extent.first;
  uint64_t hi = extent.end();
  while (lo < hi) {
    uint32_t align_t =
        lo == 0 ? max_type_ : static_cast<uint32_t>(
                                  FloorLog2(LargestAlignedSize(lo)));
    uint32_t fit_t = FloorLog2(hi - lo);
    uint32_t t = std::min(std::min(align_t, fit_t), max_type_);
    ForEachAncestor(lo, t, max_type_, [&](PageId a, uint32_t at) {
      ++intents_[{a, at}];
    });
    lo += uint64_t{1} << t;
  }
}

bool ReleaseLockTable::IsReleaseLocked(PageId page) const {
  LatchGuard g(latch_);
  for (const auto& [txn, locks] : by_txn_) {
    auto it = locks.extents.upper_bound(page);
    if (it != locks.extents.begin()) {
      --it;
      if (page >= it->second.first && page < it->second.end()) return true;
    }
  }
  return false;
}

bool ReleaseLockTable::HasIntentionLock(PageId start, uint32_t type) const {
  LatchGuard g(latch_);
  auto it = intents_.find({start, type});
  return it != intents_.end() && it->second > 0;
}

std::vector<Extent> ReleaseLockTable::Commit(uint64_t txn) {
  LatchGuard g(latch_);
  std::vector<Extent> out;
  auto it = by_txn_.find(txn);
  if (it == by_txn_.end()) return out;
  for (const auto& [first, e] : it->second.extents) {
    out.push_back(e);
    uint64_t lo = e.first;
    uint64_t hi = e.end();
    while (lo < hi) {
      uint32_t align_t =
          lo == 0 ? max_type_ : static_cast<uint32_t>(
                                    FloorLog2(LargestAlignedSize(lo)));
      uint32_t fit_t = FloorLog2(hi - lo);
      uint32_t t = std::min(std::min(align_t, fit_t), max_type_);
      ForEachAncestor(lo, t, max_type_, [&](PageId a, uint32_t at) {
        auto ii = intents_.find({a, at});
        assert(ii != intents_.end() && ii->second > 0);
        if (--ii->second == 0) intents_.erase(ii);
      });
      lo += uint64_t{1} << t;
    }
  }
  by_txn_.erase(it);
  return out;
}

std::vector<Extent> ReleaseLockTable::Abort(uint64_t txn) {
  // Same bookkeeping as Commit; the caller just refrains from deallocating
  // (the free is undone, so the extents stay allocated to the object).
  return Commit(txn);
}

size_t ReleaseLockTable::lock_count() const {
  LatchGuard g(latch_);
  size_t n = 0;
  for (const auto& [txn, locks] : by_txn_) n += locks.extents.size();
  return n;
}

}  // namespace eos
