#ifndef EOS_TXN_TRANSACTION_H_
#define EOS_TXN_TRANSACTION_H_

#include <cstdint>

#include "buddy/segment_allocator.h"
#include "common/bytes.h"
#include "common/status.h"
#include "lob/lob_manager.h"
#include "txn/log_manager.h"
#include "txn/release_locks.h"

namespace eos {

// A single-object transaction combining the Section 4.5 machinery:
//  * every update is logged (write-ahead, root LSN stamped);
//  * segments freed by updates are not returned to the buddy system but
//    parked under release locks, so their space cannot be reallocated
//    until the outcome is known ([Lehm89]);
//  * Commit() frees the parked segments for real;
//  * Rollback() logically undoes the updates via the log (idempotently,
//    thanks to the root LSN) and then frees the parked segments — the
//    undone content lives in freshly allocated segments, so the originals
//    are garbage either way.
//
// Scope: one descriptor, one thread. The object must not be touched
// through other channels while the transaction is open.
class Transaction : public FreeInterceptor {
 public:
  Transaction(LobManager* mgr, LogManager* log, ReleaseLockTable* locks,
              uint64_t txn_id, uint64_t object_id, LobDescriptor* d);

  // Rolls back if neither Commit() nor Rollback() was called.
  ~Transaction() override;

  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;

  Status Append(ByteView data);
  Status Insert(uint64_t offset, ByteView data);
  Status Delete(uint64_t offset, uint64_t n);
  Status Replace(uint64_t offset, ByteView data);
  Status Read(uint64_t offset, uint64_t n, Bytes* out);

  Status Commit();
  Status Rollback();

  bool active() const { return active_; }
  uint64_t id() const { return txn_id_; }

  // FreeInterceptor: park freed extents under release locks.
  bool InterceptFree(const Extent& extent) override;

 private:
  Status Begin();
  void Detach();
  Status DrainParked();

  LobManager* mgr_;
  LogManager* log_;
  ReleaseLockTable* locks_;
  uint64_t txn_id_;
  uint64_t object_id_;
  LobDescriptor* d_;
  uint64_t begin_lsn_ = 0;
  bool active_ = false;
  bool intercepting_ = false;
};

}  // namespace eos

#endif  // EOS_TXN_TRANSACTION_H_
