#ifndef EOS_TXN_BYTE_RANGE_LOCKS_H_
#define EOS_TXN_BYTE_RANGE_LOCKS_H_

#include <cstdint>
#include <map>
#include <vector>

#include "common/latch.h"
#include "common/status.h"

namespace eos {

// Byte-range locking for large objects (Section 4.5: "concurrency can be
// handled either by locking the root of the large object or, for finer
// granularity, the byte range affected by each operation" [Care86]).
//
// Ranges are half-open [lo, hi) in the object's byte space. Shared locks
// coexist on overlapping ranges; exclusive locks conflict with everything
// overlapping held by another transaction. Locking the whole object is the
// range [0, kWholeObject).
//
// This is a conflict table, not a scheduler: a conflicting request returns
// Busy and the caller decides whether to retry, queue, or abort — the same
// contract the paper's short-duration latches assume.
class ByteRangeLockManager {
 public:
  enum class Mode : uint8_t { kShared, kExclusive };
  static constexpr uint64_t kWholeObject = ~uint64_t{0};

  // Acquires a lock on object `object_id`, range [lo, hi) for `txn`.
  // Returns Busy on conflict with another transaction. Re-acquiring an
  // overlapping range in the same or weaker mode is granted (no upgrade
  // deadlock detection; an upgrade that conflicts returns Busy).
  Status Lock(uint64_t txn, uint64_t object_id, uint64_t lo, uint64_t hi,
              Mode mode);

  // Convenience: lock the byte range an operation touches. Length-changing
  // operations at offset B conceptually affect [B, end-of-object), which is
  // how inserts/deletes must be locked for serializability of positions.
  Status LockForRead(uint64_t txn, uint64_t object_id, uint64_t lo,
                     uint64_t hi) {
    return Lock(txn, object_id, lo, hi, Mode::kShared);
  }
  Status LockForUpdate(uint64_t txn, uint64_t object_id, uint64_t offset) {
    return Lock(txn, object_id, offset, kWholeObject, Mode::kExclusive);
  }
  Status LockForReplace(uint64_t txn, uint64_t object_id, uint64_t lo,
                        uint64_t hi) {
    return Lock(txn, object_id, lo, hi, Mode::kExclusive);
  }

  // Releases every lock held by `txn` (commit or abort).
  void ReleaseAll(uint64_t txn);

  // True iff `txn` already holds a lock covering [lo, hi) in `mode` (or
  // stronger).
  bool Holds(uint64_t txn, uint64_t object_id, uint64_t lo, uint64_t hi,
             Mode mode) const;

  size_t lock_count() const;

 private:
  struct Range {
    uint64_t txn;
    uint64_t lo;
    uint64_t hi;
    Mode mode;
  };

  mutable Latch latch_;
  std::map<uint64_t, std::vector<Range>> by_object_;
};

}  // namespace eos

#endif  // EOS_TXN_BYTE_RANGE_LOCKS_H_
