#include "txn/transaction.h"

#include "txn/recovery.h"

namespace eos {

Transaction::Transaction(LobManager* mgr, LogManager* log,
                         ReleaseLockTable* locks, uint64_t txn_id,
                         uint64_t object_id, LobDescriptor* d)
    : mgr_(mgr),
      log_(log),
      locks_(locks),
      txn_id_(txn_id),
      object_id_(object_id),
      d_(d) {
  (void)Begin();
}

Status Transaction::Begin() {
  begin_lsn_ = d_->lsn;
  mgr_->set_log_manager(log_);
  log_->set_current_object(object_id_);
  mgr_->allocator()->set_free_interceptor(this);
  intercepting_ = true;
  active_ = true;
  return Status::OK();
}

Transaction::~Transaction() {
  if (active_) (void)Rollback();
}

void Transaction::Detach() {
  if (intercepting_) {
    mgr_->allocator()->set_free_interceptor(nullptr);
    intercepting_ = false;
  }
  active_ = false;
}

bool Transaction::InterceptFree(const Extent& extent) {
  locks_->LockForRelease(txn_id_, extent);
  return true;
}

Status Transaction::Append(ByteView data) {
  if (!active_) return Status::InvalidArgument("transaction not active");
  return mgr_->Append(d_, data);
}

Status Transaction::Insert(uint64_t offset, ByteView data) {
  if (!active_) return Status::InvalidArgument("transaction not active");
  return mgr_->Insert(d_, offset, data);
}

Status Transaction::Delete(uint64_t offset, uint64_t n) {
  if (!active_) return Status::InvalidArgument("transaction not active");
  return mgr_->Delete(d_, offset, n);
}

Status Transaction::Replace(uint64_t offset, ByteView data) {
  if (!active_) return Status::InvalidArgument("transaction not active");
  return mgr_->Replace(d_, offset, data);
}

Status Transaction::Read(uint64_t offset, uint64_t n, Bytes* out) {
  if (!active_) return Status::InvalidArgument("transaction not active");
  return mgr_->Read(*d_, offset, n, out);
}

Status Transaction::DrainParked() {
  for (const Extent& e : locks_->Commit(txn_id_)) {
    EOS_RETURN_IF_ERROR(mgr_->allocator()->Free(e));
  }
  return Status::OK();
}

Status Transaction::Commit() {
  if (!active_) return Status::InvalidArgument("transaction not active");
  // The commit marker makes every record of this transaction durable as
  // committed before any of its storage is reused below.
  EOS_RETURN_IF_ERROR(log_->LogCommit(object_id_));
  Detach();
  // The parked segments are no longer referenced by the object; release
  // the locks and return them to the buddy system.
  return DrainParked();
}

Status Transaction::Rollback() {
  if (!active_) return Status::InvalidArgument("transaction not active");
  Detach();
  // Undo re-creates deleted/overwritten content in fresh segments and
  // deallocates segments this transaction allocated; the interceptor is
  // already removed, so those frees hit the buddy system directly.
  Recovery recovery(mgr_);
  EOS_RETURN_IF_ERROR(
      recovery.Undo(d_, object_id_, log_->records(), begin_lsn_));
  // The parked originals are garbage now (their content was either undone
  // into fresh segments or belongs to committed history).
  return DrainParked();
}

}  // namespace eos
