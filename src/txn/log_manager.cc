#include "txn/log_manager.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/crc32c.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"

namespace eos {

StatusOr<std::unique_ptr<LogManager>> LogManager::CreateFileBacked(
    const std::string& path) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_APPEND,
                  0644);
  if (fd < 0) {
    return Status::IOError("open(" + path + "): " + std::strerror(errno));
  }
  return std::unique_ptr<LogManager>(new LogManager(fd));
}

LogManager::~LogManager() {
  if (fd_ >= 0) ::close(fd_);
}

StatusOr<std::vector<LogRecord>> LogManager::ReadLogFile(
    const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IOError("open(" + path + "): " + std::strerror(errno));
  }
  Bytes all;
  uint8_t buf[4096];
  ssize_t r;
  while ((r = ::read(fd, buf, sizeof(buf))) > 0) {
    all.insert(all.end(), buf, buf + r);
  }
  ::close(fd);
  if (r < 0) {
    return Status::IOError(std::string("read: ") + std::strerror(errno));
  }
  // Each frame is [payload_len u32][crc32c u32][payload]. The first frame
  // that is torn (truncated) or fails its CRC marks the end of the log:
  // a crash mid-append leaves exactly such a tail, and everything before
  // it is intact by construction of the append-only write, so the parsed
  // prefix is returned rather than an error.
  std::vector<LogRecord> records;
  size_t pos = 0;
  while (pos + kFrameHeaderBytes <= all.size()) {
    uint32_t len = DecodeU32(all.data() + pos);
    uint32_t crc = DecodeU32(all.data() + pos + 4);
    const uint8_t* payload = all.data() + pos + kFrameHeaderBytes;
    if (pos + kFrameHeaderBytes + uint64_t{len} > all.size()) break;
    if (Crc32c(payload, len) != crc) break;
    size_t consumed = 0;
    StatusOr<LogRecord> rec =
        LogRecord::Parse(ByteView(payload, len), &consumed);
    if (!rec.ok() || consumed != len) {
      // The CRC held but the payload does not parse: the file was written
      // by something else entirely. That is corruption, not a torn tail.
      return Status::Corruption(path + ": log record with valid CRC fails "
                                "to parse");
    }
    records.push_back(std::move(rec).value());
    pos += kFrameHeaderBytes + len;
  }
  return records;
}

Status LogManager::Emit(LobDescriptor* d, LogRecord&& r) {
  LatchGuard g(latch_);
  r.object_id = current_object_;
  return EmitLocked(d, std::move(r), nullptr);
}

Status LogManager::EmitTagged(LogRecord&& r, uint64_t* lsn_out) {
  LatchGuard g(latch_);
  return EmitLocked(nullptr, std::move(r), lsn_out);
}

Status LogManager::EmitLocked(LobDescriptor* d, LogRecord&& r,
                              uint64_t* lsn_out) {
  r.lsn = next_lsn_++;
  if (lsn_out != nullptr) *lsn_out = r.lsn;
  // Write-ahead: the record is durable (appended) before the update is
  // applied; the LSN is placed in the root for idempotence (Section 4.5).
  if (fd_ >= 0) {
    Bytes buf(kFrameHeaderBytes + r.SerializedBytes());
    r.SerializeTo(buf.data() + kFrameHeaderBytes);
    EncodeU32(buf.data(), static_cast<uint32_t>(r.SerializedBytes()));
    EncodeU32(buf.data() + 4, Crc32c(buf.data() + kFrameHeaderBytes,
                                     r.SerializedBytes()));
    size_t put = 0;
    while (put < buf.size()) {
      ssize_t w = ::write(fd_, buf.data() + put, buf.size() - put);
      if (w < 0) {
        if (errno == EINTR) continue;
        return Status::IOError(std::string("log write: ") +
                               std::strerror(errno));
      }
      put += static_cast<size_t>(w);
    }
  }
  if (d != nullptr) d->lsn = r.lsn;
  static obs::Counter* log_records =
      obs::MetricsRegistry::Default().counter(obs::kTxnLogRecords);
  static obs::Counter* log_bytes =
      obs::MetricsRegistry::Default().counter(obs::kTxnLogBytes);
  log_records->Inc();
  log_bytes->Inc(r.SerializedBytes());
  records_.push_back(std::move(r));
  return Status::OK();
}

Status LogManager::LogInsert(LobDescriptor* d, uint64_t offset,
                             ByteView data) {
  LogRecord r;
  r.op = LogOp::kInsert;
  r.offset = offset;
  r.data = ToBytes(data);
  return Emit(d, std::move(r));
}

Status LogManager::LogDelete(LobDescriptor* d, uint64_t offset,
                             ByteView old_data) {
  LogRecord r;
  r.op = LogOp::kDelete;
  r.offset = offset;
  r.old_data = ToBytes(old_data);
  return Emit(d, std::move(r));
}

Status LogManager::LogAppend(LobDescriptor* d, ByteView data) {
  LogRecord r;
  r.op = LogOp::kAppend;
  r.offset = d->size();
  r.data = ToBytes(data);
  return Emit(d, std::move(r));
}

Status LogManager::LogReplace(LobDescriptor* d, uint64_t offset,
                              ByteView old_data, ByteView new_data) {
  LogRecord r;
  r.op = LogOp::kReplace;
  r.offset = offset;
  r.data = ToBytes(new_data);
  r.old_data = ToBytes(old_data);
  return Emit(d, std::move(r));
}

Status LogManager::LogDestroy(LobDescriptor* d, ByteView old_data) {
  LogRecord r;
  r.op = LogOp::kDestroy;
  r.offset = 0;
  r.old_data = ToBytes(old_data);
  return Emit(d, std::move(r));
}

Status LogManager::LogCommit(uint64_t object_id) {
  set_current_object(object_id);
  LogRecord r;
  r.op = LogOp::kCommit;
  return Emit(nullptr, std::move(r));
}

Status LogManager::LogCommitDurable(uint64_t object_id) {
  uint64_t marker_lsn = 0;
  EOS_RETURN_IF_ERROR(LogCommitMarker(object_id, &marker_lsn));
  return SyncToLsn(marker_lsn);
}

Status LogManager::LogCommitMarker(uint64_t object_id, uint64_t* lsn_out) {
  LogRecord r;
  r.op = LogOp::kCommit;
  r.object_id = object_id;
  return EmitTagged(std::move(r), lsn_out);
}

Status LogManager::SyncToLsn(uint64_t lsn) {
  static obs::Histogram* batch_hist =
      obs::MetricsRegistry::Default().histogram(obs::kTxnGroupCommitBatch);
  std::unique_lock<std::mutex> lk(commit_mu_);
  ++pending_commits_;
  while (durable_lsn_ < lsn) {
    if (!sync_in_flight_) {
      // Leader: one fsync covers every record appended so far, so every
      // committer queued at this point rides the same barrier.
      sync_in_flight_ = true;
      uint32_t covered = pending_commits_;
      uint64_t target;
      {
        LatchGuard g(latch_);
        target = next_lsn_ - 1;
      }
      lk.unlock();
      Status s = Status::OK();
      if (fd_ >= 0 && ::fsync(fd_) != 0) {
        s = Status::IOError(std::string("log fsync: ") +
                            std::strerror(errno));
      }
      lk.lock();
      sync_in_flight_ = false;
      commit_cv_.notify_all();
      if (!s.ok()) {
        // Durability not advanced; a waiter becomes the next leader and
        // retries. This committer reports the failure.
        --pending_commits_;
        return s;
      }
      if (target > durable_lsn_) durable_lsn_ = target;
      batch_hist->Record(covered);
    } else {
      commit_cv_.wait(lk);
    }
  }
  --pending_commits_;
  return Status::OK();
}

uint64_t LogManager::durable_lsn() const {
  std::lock_guard<std::mutex> lk(commit_mu_);
  return durable_lsn_;
}

}  // namespace eos
