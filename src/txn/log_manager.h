#ifndef EOS_TXN_LOG_MANAGER_H_
#define EOS_TXN_LOG_MANAGER_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/latch.h"
#include "common/status.h"
#include "lob/descriptor.h"
#include "txn/log_record.h"

namespace eos {

// Write-ahead log of logical large-object operations (Section 4.5).
//
// Each logged update receives a monotone LSN which is stamped into the
// object's root; recovery compares the root LSN against the log to decide
// idempotently which records to redo or undo. The log lives in memory and
// is optionally mirrored to an append-only file for crash simulation.
//
// On-file framing: every record is wrapped as [payload_len u32]
// [crc32c u32][payload], so a record torn by a crash mid-append — or
// rotted on media afterwards — is detectable on read-back.
class LogManager {
 public:
  static constexpr size_t kFrameHeaderBytes = 8;

  LogManager() = default;

  // Mirrors records to `path` (created/truncated).
  static StatusOr<std::unique_ptr<LogManager>> CreateFileBacked(
      const std::string& path);

  // Reads back the records of a file written by a file-backed manager.
  // The first frame that is truncated or fails its CRC is treated as the
  // end of the log (a crash tears exactly the tail), and the intact prefix
  // is returned — recovery then restores the last consistent state the
  // surviving records describe.
  static StatusOr<std::vector<LogRecord>> ReadLogFile(
      const std::string& path);

  ~LogManager();

  LogManager(const LogManager&) = delete;
  LogManager& operator=(const LogManager&) = delete;

  Status LogInsert(LobDescriptor* d, uint64_t offset, ByteView data);
  Status LogDelete(LobDescriptor* d, uint64_t offset, ByteView old_data);
  Status LogAppend(LobDescriptor* d, ByteView data);
  Status LogReplace(LobDescriptor* d, uint64_t offset, ByteView old_data,
                    ByteView new_data);
  Status LogDestroy(LobDescriptor* d, ByteView old_data);

  // Commit marker for `object_id`: declares every earlier record of the
  // object committed (Section 4.5 commit processing). Does not stamp any
  // descriptor — the marker has no effect on object state.
  Status LogCommit(uint64_t object_id);

  // Group commit (DESIGN.md §13): appends the commit marker and returns
  // once it is durable on the backing file. Concurrent committers share
  // fsyncs leader/follower style — the first committer to find no sync in
  // flight syncs every record appended so far (covering the markers of
  // everyone queued behind it); the rest wait for a sync whose coverage
  // includes their marker. Batch sizes are recorded in
  // txn.group_commit_batch. An in-memory log (no backing file) is durable
  // at append, so the call degenerates to LogCommit plus metric upkeep.
  // Unlike the rest of the API this does not route the object id through
  // set_current_object, so concurrent committers need no external latch.
  Status LogCommitDurable(uint64_t object_id);

  // The two halves of LogCommitDurable, for callers that must emit the
  // marker while holding a latch that orders it against the object's other
  // records, but wait for durability only after releasing that latch — the
  // wait is where group commit batches, so it must not serialize appends.
  Status LogCommitMarker(uint64_t object_id, uint64_t* lsn_out);
  // Blocks until a completed sync covers `lsn`, becoming the fsync leader
  // if none is in flight.
  Status SyncToLsn(uint64_t lsn);

  // Highest LSN covered by a completed sync (always last_lsn() for an
  // in-memory log).
  uint64_t durable_lsn() const;

  const std::vector<LogRecord>& records() const { return records_; }
  uint64_t last_lsn() const { return next_lsn_ - 1; }

  // Object identity used for subsequent records (set by the Database layer
  // before operating on an object; 0 for standalone use).
  void set_current_object(uint64_t id) { current_object_ = id; }

 private:
  explicit LogManager(int fd) : fd_(fd) {}

  Status Emit(LobDescriptor* d, LogRecord&& r);
  // Emit that keeps the record's pre-set object_id (thread-safe commit
  // path) and reports the assigned LSN.
  Status EmitTagged(LogRecord&& r, uint64_t* lsn_out);
  Status EmitLocked(LobDescriptor* d, LogRecord&& r, uint64_t* lsn_out);

  Latch latch_;
  std::vector<LogRecord> records_;
  uint64_t next_lsn_ = 1;
  uint64_t current_object_ = 0;
  int fd_ = -1;

  // Group-commit state: guarded by commit_mu_, separate from latch_ so a
  // leader's fsync never blocks appends.
  mutable std::mutex commit_mu_;
  std::condition_variable commit_cv_;
  uint64_t durable_lsn_ = 0;
  bool sync_in_flight_ = false;
  uint32_t pending_commits_ = 0;
};

}  // namespace eos

#endif  // EOS_TXN_LOG_MANAGER_H_
