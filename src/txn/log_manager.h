#ifndef EOS_TXN_LOG_MANAGER_H_
#define EOS_TXN_LOG_MANAGER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/latch.h"
#include "common/status.h"
#include "lob/descriptor.h"
#include "txn/log_record.h"

namespace eos {

// Write-ahead log of logical large-object operations (Section 4.5).
//
// Each logged update receives a monotone LSN which is stamped into the
// object's root; recovery compares the root LSN against the log to decide
// idempotently which records to redo or undo. The log lives in memory and
// is optionally mirrored to an append-only file for crash simulation.
//
// On-file framing: every record is wrapped as [payload_len u32]
// [crc32c u32][payload], so a record torn by a crash mid-append — or
// rotted on media afterwards — is detectable on read-back.
class LogManager {
 public:
  static constexpr size_t kFrameHeaderBytes = 8;

  LogManager() = default;

  // Mirrors records to `path` (created/truncated).
  static StatusOr<std::unique_ptr<LogManager>> CreateFileBacked(
      const std::string& path);

  // Reads back the records of a file written by a file-backed manager.
  // The first frame that is truncated or fails its CRC is treated as the
  // end of the log (a crash tears exactly the tail), and the intact prefix
  // is returned — recovery then restores the last consistent state the
  // surviving records describe.
  static StatusOr<std::vector<LogRecord>> ReadLogFile(
      const std::string& path);

  ~LogManager();

  LogManager(const LogManager&) = delete;
  LogManager& operator=(const LogManager&) = delete;

  Status LogInsert(LobDescriptor* d, uint64_t offset, ByteView data);
  Status LogDelete(LobDescriptor* d, uint64_t offset, ByteView old_data);
  Status LogAppend(LobDescriptor* d, ByteView data);
  Status LogReplace(LobDescriptor* d, uint64_t offset, ByteView old_data,
                    ByteView new_data);
  Status LogDestroy(LobDescriptor* d, ByteView old_data);

  // Commit marker for `object_id`: declares every earlier record of the
  // object committed (Section 4.5 commit processing). Does not stamp any
  // descriptor — the marker has no effect on object state.
  Status LogCommit(uint64_t object_id);

  const std::vector<LogRecord>& records() const { return records_; }
  uint64_t last_lsn() const { return next_lsn_ - 1; }

  // Object identity used for subsequent records (set by the Database layer
  // before operating on an object; 0 for standalone use).
  void set_current_object(uint64_t id) { current_object_ = id; }

 private:
  explicit LogManager(int fd) : fd_(fd) {}

  Status Emit(LobDescriptor* d, LogRecord&& r);

  Latch latch_;
  std::vector<LogRecord> records_;
  uint64_t next_lsn_ = 1;
  uint64_t current_object_ = 0;
  int fd_ = -1;
};

}  // namespace eos

#endif  // EOS_TXN_LOG_MANAGER_H_
