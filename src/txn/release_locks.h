#ifndef EOS_TXN_RELEASE_LOCKS_H_
#define EOS_TXN_RELEASE_LOCKS_H_

#include <cstdint>
#include <map>
#include <vector>

#include "common/latch.h"
#include "io/page_device.h"

namespace eos {

// Hierarchical release locks on freed segments, after [Lehm89] as adopted
// in Section 4.5: when a transaction frees a segment, a release lock is
// placed on it and intention-release locks on all of its buddy-system
// ancestors (the enclosing power-of-two aligned extents). As in
// hierarchical locking, descendants of a release-locked segment count as
// locked too, so the space cannot be coalesced away and reallocated until
// the holding transaction commits.
//
// The table also acts as a deferred-free list: a transaction routes its
// segment frees through the table, and only on Commit() are the extents
// actually returned to the buddy system (Abort() simply forgets them,
// leaving the segments allocated — the free is undone).
class ReleaseLockTable {
 public:
  // Ancestors are computed within buddy spaces of `space_pages` data pages
  // whose first data page is aligned per the segment allocator layout.
  ReleaseLockTable(uint32_t space_pages, uint32_t max_type)
      : space_pages_(space_pages), max_type_(max_type) {}

  // Records the free of `extent` by transaction `txn`: release locks on the
  // extent's aligned chunks, intention locks on every ancestor.
  void LockForRelease(uint64_t txn, const Extent& extent);

  // True iff `page` is covered by a release lock (directly or as a
  // descendant of a locked segment).
  bool IsReleaseLocked(PageId page) const;

  // True iff the aligned segment [start, start + 2^type) carries an
  // intention-release lock, i.e. some descendant is release-locked. The
  // buddy system must not coalesce across such a segment.
  bool HasIntentionLock(PageId start, uint32_t type) const;

  // Returns (and forgets) the extents freed by `txn`, for actual
  // deallocation at commit.
  std::vector<Extent> Commit(uint64_t txn);

  // Forgets the extents freed by `txn`; the segments remain allocated.
  std::vector<Extent> Abort(uint64_t txn);

  size_t lock_count() const;

 private:
  struct Locks {
    // Release-locked extents keyed by first page.
    std::map<PageId, Extent> extents;
  };

  uint32_t space_pages_;
  uint32_t max_type_;
  mutable Latch latch_;
  std::map<uint64_t, Locks> by_txn_;
  // Intention-lock reference counts keyed by (start, type).
  std::map<std::pair<PageId, uint32_t>, uint32_t> intents_;
};

}  // namespace eos

#endif  // EOS_TXN_RELEASE_LOCKS_H_
