#include "txn/byte_range_locks.h"

#include <algorithm>

namespace eos {

namespace {

bool Overlaps(uint64_t alo, uint64_t ahi, uint64_t blo, uint64_t bhi) {
  return alo < bhi && blo < ahi;
}

}  // namespace

Status ByteRangeLockManager::Lock(uint64_t txn, uint64_t object_id,
                                  uint64_t lo, uint64_t hi, Mode mode) {
  if (lo >= hi) return Status::InvalidArgument("empty lock range");
  LatchGuard g(latch_);
  auto& ranges = by_object_[object_id];
  for (const Range& r : ranges) {
    if (r.txn == txn || !Overlaps(r.lo, r.hi, lo, hi)) continue;
    if (mode == Mode::kExclusive || r.mode == Mode::kExclusive) {
      return Status::Busy(
          "byte range [" + std::to_string(lo) + ", " + std::to_string(hi) +
          ") of object " + std::to_string(object_id) +
          " is locked by transaction " + std::to_string(r.txn));
    }
  }
  ranges.push_back(Range{txn, lo, hi, mode});
  return Status::OK();
}

void ByteRangeLockManager::ReleaseAll(uint64_t txn) {
  LatchGuard g(latch_);
  for (auto it = by_object_.begin(); it != by_object_.end();) {
    auto& ranges = it->second;
    ranges.erase(std::remove_if(ranges.begin(), ranges.end(),
                                [txn](const Range& r) {
                                  return r.txn == txn;
                                }),
                 ranges.end());
    it = ranges.empty() ? by_object_.erase(it) : std::next(it);
  }
}

bool ByteRangeLockManager::Holds(uint64_t txn, uint64_t object_id,
                                 uint64_t lo, uint64_t hi, Mode mode) const {
  LatchGuard g(latch_);
  auto it = by_object_.find(object_id);
  if (it == by_object_.end()) return false;
  // The query range must be fully covered by this transaction's locks of
  // sufficient strength; check coverage greedily from lo.
  uint64_t need = lo;
  bool progress = true;
  while (need < hi && progress) {
    progress = false;
    for (const Range& r : it->second) {
      if (r.txn != txn) continue;
      if (mode == Mode::kExclusive && r.mode != Mode::kExclusive) continue;
      if (r.lo <= need && r.hi > need) {
        need = r.hi;
        progress = true;
      }
    }
  }
  return need >= hi;
}

size_t ByteRangeLockManager::lock_count() const {
  LatchGuard g(latch_);
  size_t n = 0;
  for (const auto& [id, ranges] : by_object_) n += ranges.size();
  return n;
}

}  // namespace eos
