#ifndef EOS_TXN_RECOVERY_H_
#define EOS_TXN_RECOVERY_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "lob/descriptor.h"
#include "lob/lob_manager.h"
#include "txn/log_record.h"

namespace eos {

// Idempotent redo/undo of logical large-object log records (Section 4.5).
//
// The LSN of the most recent applied update lives in the object's root, so
// redo skips records the object already reflects and undo skips records it
// never saw — applying recovery twice is a no-op.
class Recovery {
 public:
  explicit Recovery(LobManager* mgr) : mgr_(mgr) {}

  // Reapplies, in log order, every record for `object_id` with
  // lsn > d->lsn (and, if `up_to_lsn` is given, lsn <= up_to_lsn). The
  // object's root LSN advances to the last record applied.
  Status Redo(LobDescriptor* d, uint64_t object_id,
              const std::vector<LogRecord>& log,
              uint64_t up_to_lsn = ~uint64_t{0});

  // Rolls back, in reverse log order, every record for `object_id` with
  // lsn <= d->lsn and lsn > stop_lsn (pass 0 to undo everything). The
  // root LSN retreats below each undone record.
  Status Undo(LobDescriptor* d, uint64_t object_id,
              const std::vector<LogRecord>& log, uint64_t stop_lsn);

  // Full crash recovery for one object: restores `d` to the object's last
  // committed state (the state at its newest kCommit record). Redoes the
  // committed tail first — bringing the root to last-committed coordinates
  // — then removes any in-flight (post-commit) effects, newest first.
  //
  // Structural updates (insert/append/delete/destroy) never modify pages an
  // older durable root can reach (index shadowing + commit-deferred frees),
  // so an in-flight record the durable root does not reflect needs no undo.
  // Replace is the exception: it patches leaf bytes in place, so a crash
  // mid-replace can leave torn bytes under the committed root even though
  // the root LSN never advanced — its before-image is therefore restored
  // unconditionally.
  Status RecoverObject(LobDescriptor* d, uint64_t object_id,
                       const std::vector<LogRecord>& log);

  // LSN of the newest kCommit record for `object_id` (0 if none).
  static uint64_t LastCommitLsn(uint64_t object_id,
                                const std::vector<LogRecord>& log);

 private:
  Status ApplyForward(LobDescriptor* d, const LogRecord& r);
  Status ApplyBackward(LobDescriptor* d, const LogRecord& r);

  LobManager* mgr_;
};

}  // namespace eos

#endif  // EOS_TXN_RECOVERY_H_
