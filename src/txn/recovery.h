#ifndef EOS_TXN_RECOVERY_H_
#define EOS_TXN_RECOVERY_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "lob/descriptor.h"
#include "lob/lob_manager.h"
#include "txn/log_record.h"

namespace eos {

// Idempotent redo/undo of logical large-object log records (Section 4.5).
//
// The LSN of the most recent applied update lives in the object's root, so
// redo skips records the object already reflects and undo skips records it
// never saw — applying recovery twice is a no-op.
class Recovery {
 public:
  explicit Recovery(LobManager* mgr) : mgr_(mgr) {}

  // Reapplies, in log order, every record for `object_id` with
  // lsn > d->lsn. The object's root LSN advances to the last record.
  Status Redo(LobDescriptor* d, uint64_t object_id,
              const std::vector<LogRecord>& log);

  // Rolls back, in reverse log order, every record for `object_id` with
  // lsn <= d->lsn and lsn > stop_lsn (pass 0 to undo everything). The
  // root LSN retreats below each undone record.
  Status Undo(LobDescriptor* d, uint64_t object_id,
              const std::vector<LogRecord>& log, uint64_t stop_lsn);

 private:
  Status ApplyForward(LobDescriptor* d, const LogRecord& r);
  Status ApplyBackward(LobDescriptor* d, const LogRecord& r);

  LobManager* mgr_;
};

}  // namespace eos

#endif  // EOS_TXN_RECOVERY_H_
