#ifndef EOS_TXN_LOG_RECORD_H_
#define EOS_TXN_LOG_RECORD_H_

#include <cstdint>
#include <cstring>

#include "common/bytes.h"
#include "common/status.h"

namespace eos {

// Logical (operation) log records, Section 4.5: because leaf segments carry
// no control information, the log records the *operation that caused the
// update and its parameters*, and the LSN of the update is placed in the
// object's root so the update can be undone or redone idempotently.
enum class LogOp : uint8_t {
  kInsert = 1,   // data inserted at offset
  kDelete = 2,   // old_data deleted from offset
  kAppend = 3,   // data appended at the end
  kReplace = 4,  // old_data overwritten by data at offset
  kDestroy = 5,  // whole object (old_data) destroyed
  kCommit = 6,   // commit marker: every earlier record of the object is
                 // committed; recovery redoes up to the last one and undoes
                 // anything after it (no payload)
};

struct LogRecord {
  uint64_t lsn = 0;
  uint64_t object_id = 0;
  LogOp op = LogOp::kInsert;
  uint64_t offset = 0;
  Bytes data;      // after-image (insert/append/replace)
  Bytes old_data;  // before-image (delete/replace/destroy)

  // Wire format: [lsn u64][object u64][op u8][offset u64]
  //              [data_len u32][old_len u32][data][old_data]
  static constexpr size_t kHeaderBytes = 8 + 8 + 1 + 8 + 4 + 4;

  size_t SerializedBytes() const {
    return kHeaderBytes + data.size() + old_data.size();
  }

  void SerializeTo(uint8_t* out) const {
    EncodeU64(out, lsn);
    EncodeU64(out + 8, object_id);
    out[16] = static_cast<uint8_t>(op);
    EncodeU64(out + 17, offset);
    EncodeU32(out + 25, static_cast<uint32_t>(data.size()));
    EncodeU32(out + 29, static_cast<uint32_t>(old_data.size()));
    if (!data.empty()) {
      std::memcpy(out + kHeaderBytes, data.data(), data.size());
    }
    if (!old_data.empty()) {
      std::memcpy(out + kHeaderBytes + data.size(), old_data.data(),
                  old_data.size());
    }
  }

  // Parses one record from `in`; advances *consumed by its total size.
  static StatusOr<LogRecord> Parse(ByteView in, size_t* consumed) {
    if (in.size() < kHeaderBytes) {
      return Status::Corruption("truncated log record header");
    }
    LogRecord r;
    r.lsn = DecodeU64(in.data());
    r.object_id = DecodeU64(in.data() + 8);
    uint8_t op = in[16];
    if (op < 1 || op > 6) return Status::Corruption("bad log op code");
    r.op = static_cast<LogOp>(op);
    r.offset = DecodeU64(in.data() + 17);
    uint32_t dlen = DecodeU32(in.data() + 25);
    uint32_t olen = DecodeU32(in.data() + 29);
    if (in.size() < kHeaderBytes + uint64_t{dlen} + olen) {
      return Status::Corruption("truncated log record payload");
    }
    r.data.assign(in.data() + kHeaderBytes, in.data() + kHeaderBytes + dlen);
    r.old_data.assign(in.data() + kHeaderBytes + dlen,
                      in.data() + kHeaderBytes + dlen + olen);
    *consumed = kHeaderBytes + dlen + olen;
    return r;
  }
};

}  // namespace eos

#endif  // EOS_TXN_LOG_RECORD_H_
