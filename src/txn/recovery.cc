#include "txn/recovery.h"

#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "txn/log_manager.h"

namespace eos {

namespace {

obs::Counter* RedoCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default().counter(obs::kTxnRedoApplied);
  return c;
}

obs::Counter* UndoCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default().counter(obs::kTxnUndoApplied);
  return c;
}

// Recovery replays operations through the normal update paths; logging must
// be suspended while it does, or replay would append to the log again.
class ScopedLogSuspend {
 public:
  explicit ScopedLogSuspend(LobManager* mgr)
      : mgr_(mgr), saved_(mgr->log_manager()) {
    mgr_->set_log_manager(nullptr);
  }
  ~ScopedLogSuspend() { mgr_->set_log_manager(saved_); }

 private:
  LobManager* mgr_;
  LogManager* saved_;
};

}  // namespace

Status Recovery::ApplyForward(LobDescriptor* d, const LogRecord& r) {
  switch (r.op) {
    case LogOp::kInsert:
      return mgr_->Insert(d, r.offset, r.data);
    case LogOp::kAppend:
      return mgr_->Append(d, r.data);
    case LogOp::kDelete:
      return mgr_->Delete(d, r.offset, r.old_data.size());
    case LogOp::kReplace:
      return mgr_->Replace(d, r.offset, r.data);
    case LogOp::kDestroy:
      return mgr_->Destroy(d);
    case LogOp::kCommit:
      return Status::OK();  // marker only, no object effect
  }
  return Status::Corruption("unknown log op");
}

Status Recovery::ApplyBackward(LobDescriptor* d, const LogRecord& r) {
  switch (r.op) {
    case LogOp::kInsert:
      return mgr_->Delete(d, r.offset, r.data.size());
    case LogOp::kAppend:
      return mgr_->Truncate(d, d->size() - r.data.size());
    case LogOp::kDelete:
      return mgr_->Insert(d, r.offset, r.old_data);
    case LogOp::kReplace:
      return mgr_->Replace(d, r.offset, r.old_data);
    case LogOp::kDestroy: {
      // Rebuild the object from its before-image.
      LobAppender app(mgr_, d, r.old_data.size());
      EOS_RETURN_IF_ERROR(app.Append(r.old_data));
      return app.Finish();
    }
    case LogOp::kCommit:
      return Status::OK();  // marker only, no object effect
  }
  return Status::Corruption("unknown log op");
}

Status Recovery::Redo(LobDescriptor* d, uint64_t object_id,
                      const std::vector<LogRecord>& log, uint64_t up_to_lsn) {
  ScopedLogSuspend suspend(mgr_);
  for (const LogRecord& r : log) {
    if (r.object_id != object_id) continue;
    if (r.lsn > up_to_lsn) break;
    if (r.lsn <= d->lsn) continue;  // already reflected: idempotence
    if (r.op == LogOp::kCommit) continue;
    EOS_RETURN_IF_ERROR(ApplyForward(d, r));
    RedoCounter()->Inc();
    d->lsn = r.lsn;
  }
  return Status::OK();
}

Status Recovery::Undo(LobDescriptor* d, uint64_t object_id,
                      const std::vector<LogRecord>& log, uint64_t stop_lsn) {
  ScopedLogSuspend suspend(mgr_);
  for (auto it = log.rbegin(); it != log.rend(); ++it) {
    const LogRecord& r = *it;
    if (r.object_id != object_id || r.op == LogOp::kCommit) continue;
    if (r.lsn > d->lsn) continue;  // never applied: idempotence
    if (r.lsn <= stop_lsn) break;
    EOS_RETURN_IF_ERROR(ApplyBackward(d, r));
    UndoCounter()->Inc();
    d->lsn = r.lsn - 1;
  }
  return Status::OK();
}

uint64_t Recovery::LastCommitLsn(uint64_t object_id,
                                 const std::vector<LogRecord>& log) {
  uint64_t lsn = 0;
  for (const LogRecord& r : log) {
    if (r.object_id == object_id && r.op == LogOp::kCommit) lsn = r.lsn;
  }
  return lsn;
}

Status Recovery::RecoverObject(LobDescriptor* d, uint64_t object_id,
                               const std::vector<LogRecord>& log) {
  uint64_t commit_lsn = LastCommitLsn(object_id, log);
  // Roll forward to the last committed state first. Redo works through the
  // normal update paths and never reads existing object content, so it is
  // safe even when a torn in-flight replace left garbage bytes — and it
  // puts the root into the coordinate system the in-flight records' offsets
  // are expressed in.
  EOS_RETURN_IF_ERROR(Redo(d, object_id, log, commit_lsn));

  // In-flight records (after the last commit), each paired with the LSN of
  // its predecessor in the object's log — the state its update could only
  // have started on top of.
  struct InFlight {
    const LogRecord* r;
    uint64_t base_lsn;
  };
  std::vector<InFlight> tail;
  uint64_t base = 0;
  for (const LogRecord& r : log) {
    if (r.object_id != object_id || r.op == LogOp::kCommit) continue;
    if (r.lsn <= commit_lsn) {
      base = r.lsn;
    } else {
      tail.push_back({&r, base});
      base = r.lsn;
    }
  }

  // Remove in-flight effects, newest first.
  ScopedLogSuspend suspend(mgr_);
  for (auto it = tail.rbegin(); it != tail.rend(); ++it) {
    const LogRecord& r = *it->r;
    if (r.op == LogOp::kReplace) {
      // In-place update: the leaf bytes may be torn even though the root
      // LSN never advanced, so the before-image is restored whenever the
      // write could have started — i.e. every earlier record is reflected
      // in the recovered root, which guarantees the offset's coordinate
      // system. A restore that was never needed is idempotent.
      if (d->lsn >= it->base_lsn &&
          r.offset + r.old_data.size() <= d->size()) {
        EOS_RETURN_IF_ERROR(mgr_->Replace(d, r.offset, r.old_data));
        UndoCounter()->Inc();
      }
      if (d->lsn >= r.lsn) d->lsn = r.lsn - 1;
      continue;
    }
    if (r.lsn > d->lsn) continue;  // structural op never applied: no trace
    EOS_RETURN_IF_ERROR(ApplyBackward(d, r));
    UndoCounter()->Inc();
    d->lsn = r.lsn - 1;
  }
  static obs::Counter* recovered =
      obs::MetricsRegistry::Default().counter(obs::kTxnObjectsRecovered);
  recovered->Inc();
  return Status::OK();
}

}  // namespace eos
