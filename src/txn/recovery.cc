#include "txn/recovery.h"

#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "txn/log_manager.h"

namespace eos {

namespace {

obs::Counter* RedoCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default().counter(obs::kTxnRedoApplied);
  return c;
}

obs::Counter* UndoCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default().counter(obs::kTxnUndoApplied);
  return c;
}

// Recovery replays operations through the normal update paths; logging must
// be suspended while it does, or replay would append to the log again.
class ScopedLogSuspend {
 public:
  explicit ScopedLogSuspend(LobManager* mgr)
      : mgr_(mgr), saved_(mgr->log_manager()) {
    mgr_->set_log_manager(nullptr);
  }
  ~ScopedLogSuspend() { mgr_->set_log_manager(saved_); }

 private:
  LobManager* mgr_;
  LogManager* saved_;
};

}  // namespace

Status Recovery::ApplyForward(LobDescriptor* d, const LogRecord& r) {
  switch (r.op) {
    case LogOp::kInsert:
      return mgr_->Insert(d, r.offset, r.data);
    case LogOp::kAppend:
      return mgr_->Append(d, r.data);
    case LogOp::kDelete:
      return mgr_->Delete(d, r.offset, r.old_data.size());
    case LogOp::kReplace:
      return mgr_->Replace(d, r.offset, r.data);
    case LogOp::kDestroy:
      return mgr_->Destroy(d);
  }
  return Status::Corruption("unknown log op");
}

Status Recovery::ApplyBackward(LobDescriptor* d, const LogRecord& r) {
  switch (r.op) {
    case LogOp::kInsert:
      return mgr_->Delete(d, r.offset, r.data.size());
    case LogOp::kAppend:
      return mgr_->Truncate(d, d->size() - r.data.size());
    case LogOp::kDelete:
      return mgr_->Insert(d, r.offset, r.old_data);
    case LogOp::kReplace:
      return mgr_->Replace(d, r.offset, r.old_data);
    case LogOp::kDestroy: {
      // Rebuild the object from its before-image.
      LobAppender app(mgr_, d, r.old_data.size());
      EOS_RETURN_IF_ERROR(app.Append(r.old_data));
      return app.Finish();
    }
  }
  return Status::Corruption("unknown log op");
}

Status Recovery::Redo(LobDescriptor* d, uint64_t object_id,
                      const std::vector<LogRecord>& log) {
  ScopedLogSuspend suspend(mgr_);
  for (const LogRecord& r : log) {
    if (r.object_id != object_id) continue;
    if (r.lsn <= d->lsn) continue;  // already reflected: idempotence
    EOS_RETURN_IF_ERROR(ApplyForward(d, r));
    RedoCounter()->Inc();
    d->lsn = r.lsn;
  }
  return Status::OK();
}

Status Recovery::Undo(LobDescriptor* d, uint64_t object_id,
                      const std::vector<LogRecord>& log, uint64_t stop_lsn) {
  ScopedLogSuspend suspend(mgr_);
  for (auto it = log.rbegin(); it != log.rend(); ++it) {
    const LogRecord& r = *it;
    if (r.object_id != object_id) continue;
    if (r.lsn > d->lsn) continue;  // never applied: idempotence
    if (r.lsn <= stop_lsn) break;
    EOS_RETURN_IF_ERROR(ApplyBackward(d, r));
    UndoCounter()->Inc();
    d->lsn = r.lsn - 1;
  }
  return Status::OK();
}

}  // namespace eos
