#include "cache/extent_cache.h"

#include <algorithm>
#include <cstring>

#include "common/compress.h"
#include "obs/event_journal.h"
#include "obs/metric_names.h"

namespace eos {

namespace {

inline uint64_t Mix64(uint64_t x) {
  // splitmix64 finalizer.
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// A compressed image must shrink by at least 1/8 to be worth the
// decompress on every probation hit.
inline size_t CompressCap(size_t len) { return len - len / 8; }

}  // namespace

size_t ExtentCache::KeyHash::operator()(const Key& k) const {
  return static_cast<size_t>(
      Mix64(Mix64(k.object_id ^ (k.vseq * 0x9e3779b97f4a7c15ULL)) ^ k.first));
}

ExtentCache::ExtentCache(const Options& options)
    : capacity_(options.capacity_bytes),
      shard_capacity_(std::max<size_t>(1, options.capacity_bytes / kShards)),
      shard_protected_cap_(static_cast<size_t>(
          shard_capacity_ *
          std::min(1.0, std::max(0.0, options.protected_fraction)))),
      compress_(options.compress) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  m_hit_ = reg.counter(obs::kCacheHit);
  m_miss_ = reg.counter(obs::kCacheMiss);
  m_admit_ = reg.counter(obs::kCacheAdmit);
  m_reject_ = reg.counter(obs::kCacheReject);
  m_evict_ = reg.counter(obs::kCacheEvict);
  m_invalidate_ = reg.counter(obs::kCacheInvalidate);
  m_resident_ = reg.gauge(obs::kCacheResidentBytes);
  m_logical_ = reg.gauge(obs::kCacheLogicalBytes);
}

ExtentCache::Shard& ExtentCache::ShardFor(const Key& k) const {
  return shards_[KeyHash{}(k) % kShards];
}

uint64_t ExtentCache::SketchPoint(const Key& k) {
  // No vseq: the frequency history of a hot extent survives republication.
  return Mix64(k.object_id ^ Mix64(k.first));
}

void ExtentCache::SketchTouch(uint64_t point) {
  size_t a = point % kSketchSlots;
  size_t b = Mix64(point) % kSketchSlots;
  for (size_t slot : {a, b}) {
    uint8_t v = sketch_[slot].load(std::memory_order_relaxed);
    if (v < 255) {
      sketch_[slot].store(static_cast<uint8_t>(v + 1),
                          std::memory_order_relaxed);
    }
  }
  // Periodic halving keeps the estimate a sliding window. Races just halve
  // slightly early or late; the sketch is approximate by design.
  if (sketch_samples_.fetch_add(1, std::memory_order_relaxed) + 1 ==
      kSketchSamplePeriod) {
    sketch_samples_.store(0, std::memory_order_relaxed);
    for (auto& slot : sketch_) {
      slot.store(slot.load(std::memory_order_relaxed) >> 1,
                 std::memory_order_relaxed);
    }
  }
}

uint32_t ExtentCache::SketchEstimate(uint64_t point) const {
  size_t a = point % kSketchSlots;
  size_t b = Mix64(point) % kSketchSlots;
  return std::min(sketch_[a].load(std::memory_order_relaxed),
                  sketch_[b].load(std::memory_order_relaxed));
}

void ExtentCache::RemoveLocked(
    Shard* shard, std::unordered_map<Key, Entry, KeyHash>::iterator it,
    bool count_evicted) {
  Entry& e = it->second;
  if (e.is_protected) {
    shard->protected_bytes -= e.image.size();
    shard->protect.erase(e.lru_it);
  } else {
    shard->probation.erase(e.lru_it);
  }
  shard->resident_bytes -= e.image.size();
  shard->logical_bytes -= e.logical;
  if (e.compressed) --shard->compressed_entries;
  m_resident_->Add(-static_cast<int64_t>(e.image.size()));
  m_logical_->Add(-static_cast<int64_t>(e.logical));
  if (count_evicted) {
    ++shard->evicted;
    m_evict_->Inc();
  }
  shard->entries.erase(it);
}

void ExtentCache::EvictForLocked(Shard* shard, size_t need) {
  while (shard->resident_bytes + need > shard_capacity_ &&
         !shard->entries.empty()) {
    std::list<Key>& from =
        shard->probation.empty() ? shard->protect : shard->probation;
    auto it = shard->entries.find(from.back());
    obs::RecordEvent(obs::EventKind::kNote, "cache.evict",
                     it->second.key.object_id, it->second.key.first,
                     it->second.logical);
    RemoveLocked(shard, it, /*count_evicted=*/true);
  }
}

void ExtentCache::BalanceProtectedLocked(Shard* shard) {
  while (shard->protected_bytes > shard_protected_cap_ &&
         !shard->protect.empty()) {
    Key k = shard->protect.back();
    auto it = shard->entries.find(k);
    Entry& e = it->second;
    shard->protect.pop_back();
    shard->probation.push_front(k);
    e.lru_it = shard->probation.begin();
    e.is_protected = false;
    shard->protected_bytes -= e.image.size();
  }
}

bool ExtentCache::Lookup(uint64_t object_id, uint64_t vseq, PageId first,
                         uint64_t lo, uint64_t hi, uint8_t* out) {
  if (capacity_ == 0 || hi <= lo) return false;
  Key key{object_id, vseq, first};
  uint64_t point = SketchPoint(key);
  SketchTouch(point);
  Shard& shard = ShardFor(key);
  LatchGuard g(shard.latch);
  auto it = shard.entries.find(key);
  if (it == shard.entries.end() || hi > it->second.logical) {
    ++shard.misses;
    m_miss_->Inc();
    return false;
  }
  Entry& e = it->second;
  if (e.compressed) {
    // Inflate the whole image; a probation hit is also the promotion that
    // keeps it raw from here on, so this decompress happens once.
    Bytes raw(e.logical);
    Status s = DecompressBlock(e.image.data(), e.image.size(), raw.data(),
                               raw.size());
    if (!s.ok()) {
      // Cannot happen for images we compressed ourselves; fail safe as a
      // miss and drop the entry rather than serve questionable bytes.
      RemoveLocked(&shard, it, /*count_evicted=*/false);
      ++shard.misses;
      m_miss_->Inc();
      return false;
    }
    std::memcpy(out, raw.data() + lo, hi - lo);
    int64_t delta = static_cast<int64_t>(raw.size()) -
                    static_cast<int64_t>(e.image.size());
    shard.resident_bytes += static_cast<size_t>(delta);
    m_resident_->Add(delta);
    e.image = std::move(raw);
    e.compressed = false;
    --shard.compressed_entries;
  } else {
    std::memcpy(out, e.image.data() + lo, hi - lo);
  }
  if (!e.is_protected) {
    shard.probation.erase(e.lru_it);
    shard.protect.push_front(key);
    e.lru_it = shard.protect.begin();
    e.is_protected = true;
    shard.protected_bytes += e.image.size();
    BalanceProtectedLocked(&shard);
  } else {
    shard.protect.splice(shard.protect.begin(), shard.protect, e.lru_it);
    e.lru_it = shard.protect.begin();
  }
  // Inflation may have pushed the shard over budget; rebalance now that
  // the caller's bytes are already copied out.
  EvictForLocked(&shard, 0);
  ++shard.hits;
  m_hit_->Inc();
  return true;
}

bool ExtentCache::Contains(uint64_t object_id, uint64_t vseq,
                           PageId first) const {
  if (capacity_ == 0) return false;
  Key key{object_id, vseq, first};
  Shard& shard = ShardFor(key);
  LatchGuard g(shard.latch);
  return shard.entries.find(key) != shard.entries.end();
}

bool ExtentCache::WouldAdmit(uint64_t object_id, uint64_t vseq, PageId first,
                             size_t len) const {
  if (capacity_ == 0 || len == 0 || len > shard_capacity_) return false;
  Key key{object_id, vseq, first};
  Shard& shard = ShardFor(key);
  LatchGuard g(shard.latch);
  if (shard.entries.find(key) != shard.entries.end()) return false;
  // `len` is the uncompressed length, so this is conservative when the
  // image would compress — matching Insert's own pre-check.
  if (shard.resident_bytes + len <= shard_capacity_) return true;
  const std::list<Key>& from =
      shard.probation.empty() ? shard.protect : shard.probation;
  if (from.empty()) return true;
  return SketchEstimate(SketchPoint(key)) >
         SketchEstimate(SketchPoint(from.back()));
}

void ExtentCache::Insert(uint64_t object_id, uint64_t vseq, PageId first,
                         const uint8_t* data, size_t len) {
  if (capacity_ == 0 || len == 0 || len > shard_capacity_) return;
  Key key{object_id, vseq, first};
  uint64_t point = SketchPoint(key);
  Shard& shard = ShardFor(key);

  // Frequency-based admission, pre-checked with the uncompressed length
  // BEFORE any compression work: a one-touch cold scan never displaces a
  // proven-hot entry, and rejecting it here keeps the miss path free of
  // compressor CPU (the cold-set regression budget).
  {
    LatchGuard g(shard.latch);
    if (shard.entries.find(key) != shard.entries.end()) return;
    if (shard.resident_bytes + len > shard_capacity_) {
      const std::list<Key>& from =
          shard.probation.empty() ? shard.protect : shard.probation;
      if (!from.empty() &&
          SketchEstimate(point) <= SketchEstimate(SketchPoint(from.back()))) {
        ++shard.rejected;
        m_reject_->Inc();
        return;
      }
    }
  }

  // Compress outside the shard latch; CPU work must not serialize readers.
  Bytes image;
  bool compressed = false;
  if (compress_) {
    Bytes packed(CompressCap(len));
    size_t n = CompressBlock(data, len, packed.data(), packed.size());
    if (n > 0) {
      packed.resize(n);
      packed.shrink_to_fit();
      image = std::move(packed);
      compressed = true;
    }
  }
  if (!compressed) image.assign(data, data + len);

  LatchGuard g(shard.latch);
  if (shard.entries.find(key) != shard.entries.end()) return;  // racing fill
  if (shard.resident_bytes + image.size() > shard_capacity_) {
    // Re-check against the victim: shard state may have moved while the
    // compressor ran off-latch.
    const std::list<Key>& from =
        shard.probation.empty() ? shard.protect : shard.probation;
    if (!from.empty() &&
        SketchEstimate(point) <= SketchEstimate(SketchPoint(from.back()))) {
      ++shard.rejected;
      m_reject_->Inc();
      return;
    }
    EvictForLocked(&shard, image.size());
    if (shard.resident_bytes + image.size() > shard_capacity_) return;
  }
  Entry e;
  e.key = key;
  e.logical = static_cast<uint32_t>(len);
  e.compressed = compressed;
  e.is_protected = false;
  shard.resident_bytes += image.size();
  shard.logical_bytes += len;
  if (compressed) ++shard.compressed_entries;
  m_resident_->Add(static_cast<int64_t>(image.size()));
  m_logical_->Add(static_cast<int64_t>(len));
  e.image = std::move(image);
  shard.probation.push_front(key);
  e.lru_it = shard.probation.begin();
  shard.entries.emplace(key, std::move(e));
  ++shard.admitted;
  m_admit_->Inc();
  obs::RecordEvent(obs::EventKind::kNote, "cache.admit", object_id, first,
                   len);
}

void ExtentCache::InvalidateObjectBelow(uint64_t object_id, uint64_t floor) {
  if (capacity_ == 0) return;
  uint64_t dropped = 0;
  for (Shard& shard : shards_) {
    LatchGuard g(shard.latch);
    for (auto it = shard.entries.begin(); it != shard.entries.end();) {
      if (it->first.object_id == object_id && it->first.vseq < floor) {
        auto victim = it++;
        RemoveLocked(&shard, victim, /*count_evicted=*/false);
        ++shard.invalidated;
        ++dropped;
      } else {
        ++it;
      }
    }
  }
  if (dropped > 0) {
    m_invalidate_->Inc(dropped);
    obs::RecordEvent(obs::EventKind::kNote, "cache.invalidate", object_id,
                     floor, dropped);
  }
}

void ExtentCache::Clear() {
  for (Shard& shard : shards_) {
    LatchGuard g(shard.latch);
    while (!shard.entries.empty()) {
      RemoveLocked(&shard, shard.entries.begin(), /*count_evicted=*/false);
    }
  }
}

ExtentCache::Stats ExtentCache::GetStats() const {
  Stats out;
  for (const Shard& shard : shards_) {
    LatchGuard g(shard.latch);
    out.hits += shard.hits;
    out.misses += shard.misses;
    out.admitted += shard.admitted;
    out.rejected += shard.rejected;
    out.evicted += shard.evicted;
    out.invalidated += shard.invalidated;
    out.resident_bytes += shard.resident_bytes;
    out.logical_bytes += shard.logical_bytes;
    out.entries += shard.entries.size();
    out.compressed_entries += shard.compressed_entries;
  }
  return out;
}

}  // namespace eos
