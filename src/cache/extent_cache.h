#ifndef EOS_CACHE_EXTENT_CACHE_H_
#define EOS_CACHE_EXTENT_CACHE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <list>
#include <unordered_map>

#include "common/bytes.h"
#include "common/latch.h"
#include "io/page_device.h"
#include "obs/metrics.h"

namespace eos {

// Hot-object DRAM cache tier (DESIGN.md §14).
//
// Caches whole leaf-extent images above the pager/leaf-read path, keyed by
// (object id, version sequence, extent first page). Version sequences make
// coherence trivial the BlobSeer way: a published version is immutable, so
// a cached extent of version v can never be stale — new versions get new
// keys, and entries of versions no reader can pin anymore are dropped by
// the invalidation hooks (publish, snapshot release, defrag migration).
//
//   * Admission is frequency-based (TinyLFU-style counting sketch): under
//     byte pressure a block enters only by beating the eviction victim's
//     estimated frequency, so one cold scan cannot flush the hot set.
//   * Eviction is a segmented LRU per shard: new admits land in a
//     probation segment, a re-referenced entry is promoted into the
//     protected segment (bounded to `protected_fraction` of the budget,
//     overflow demotes back to probation), and victims come from the
//     probation tail first.
//   * Optionally (options.compress) probation-resident images are stored
//     compressed (common/compress.h) when they shrink by at least 1/8;
//     promotion to the protected segment inflates the image back to raw,
//     so steady-state hot hits are a pure memcpy while the cold tail packs
//     2-4x more logical bytes into the same DRAM.
//
// Thread-safe; the key/LRU state is sharded (kShards latches) and every
// latch here is a leaf — the cache never calls back into the engine — so
// lookups from latch-free snapshot readers stay off the directory latch
// entirely.
class ExtentCache {
 public:
  struct Options {
    size_t capacity_bytes = 0;       // total resident budget, all shards
    bool compress = true;            // compress probation-resident images
    double protected_fraction = 0.8; // hot-segment share of the budget
  };

  // Aggregated over shards; counts since construction.
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t admitted = 0;
    uint64_t rejected = 0;     // failed frequency-based admission
    uint64_t evicted = 0;
    uint64_t invalidated = 0;
    uint64_t resident_bytes = 0;  // stored (possibly compressed) bytes
    uint64_t logical_bytes = 0;   // uncompressed bytes represented
    uint64_t entries = 0;
    uint64_t compressed_entries = 0;
  };

  explicit ExtentCache(const Options& options);

  ExtentCache(const ExtentCache&) = delete;
  ExtentCache& operator=(const ExtentCache&) = delete;

  // Copies bytes [lo, hi) of the cached extent image into `out` and
  // touches the entry (LRU move, frequency bump, possible promotion).
  // False on miss; a miss also records the access in the admission sketch.
  bool Lookup(uint64_t object_id, uint64_t vseq, PageId first, uint64_t lo,
              uint64_t hi, uint8_t* out);

  // True when the extent image is resident. No LRU/frequency side effects;
  // the read-ahead path uses this to skip prefetching a cached extent.
  bool Contains(uint64_t object_id, uint64_t vseq, PageId first) const;

  // Admission probe for the fill policy: would offering a `len`-byte image
  // for this key pass frequency admission right now? The leaf-read path
  // asks this before paying the whole-extent staging read a partial-range
  // miss would otherwise amplify into — a one-touch cold scan reads only
  // the bytes it asked for, while an extent the sketch has seen beat the
  // current victim and earns the fill. Advisory (no LRU/sketch side
  // effects, and Insert re-checks under the latch); may go stale by the
  // time the fill lands, which merely wastes one over-read.
  bool WouldAdmit(uint64_t object_id, uint64_t vseq, PageId first,
                  size_t len) const;

  // Offers a whole extent image of `len` logical bytes for admission.
  // May be rejected (frequency too low under pressure) or evict others.
  void Insert(uint64_t object_id, uint64_t vseq, PageId first,
              const uint8_t* data, size_t len);

  // Drops every entry of the object whose vseq is below `floor` — the
  // invalidation hook: pass the oldest version a reader could still pin
  // (the chain front) after publish/GC, or ~0 to drop the whole object.
  void InvalidateObjectBelow(uint64_t object_id, uint64_t floor);
  void InvalidateObject(uint64_t object_id) {
    InvalidateObjectBelow(object_id, ~uint64_t{0});
  }

  void Clear();

  Stats GetStats() const;
  size_t capacity_bytes() const { return capacity_; }

 private:
  static constexpr size_t kShards = 8;
  static constexpr size_t kSketchSlots = 1u << 15;  // 32k 8-bit counters
  // Halve every counter once this many accesses were sketched; keeps the
  // frequency estimate a sliding window, not an all-time count.
  static constexpr uint64_t kSketchSamplePeriod = kSketchSlots * 8;

  struct Key {
    uint64_t object_id = 0;
    uint64_t vseq = 0;
    PageId first = kInvalidPage;

    bool operator==(const Key& o) const {
      return object_id == o.object_id && vseq == o.vseq && first == o.first;
    }
  };

  struct KeyHash {
    size_t operator()(const Key& k) const;
  };

  struct Entry {
    Key key;
    Bytes image;           // stored bytes (compressed when `compressed`)
    uint32_t logical = 0;  // uncompressed length
    bool compressed = false;
    bool is_protected = false;
    std::list<Key>::iterator lru_it;  // position in its segment's list
  };

  struct Shard {
    mutable Latch latch;
    std::unordered_map<Key, Entry, KeyHash> entries;
    std::list<Key> probation;  // front = most recent
    std::list<Key> protect;
    size_t resident_bytes = 0;
    size_t logical_bytes = 0;
    size_t protected_bytes = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t admitted = 0;
    uint64_t rejected = 0;
    uint64_t evicted = 0;
    uint64_t invalidated = 0;
    uint64_t compressed_entries = 0;
  };

  Shard& ShardFor(const Key& k) const;

  // Frequency sketch keyed on (object, extent) *without* the vseq, so a
  // hot extent keeps its history across republished versions.
  static uint64_t SketchPoint(const Key& k);
  void SketchTouch(uint64_t point);
  uint32_t SketchEstimate(uint64_t point) const;

  // Removes `it`'s entry from `shard` (caller holds the shard latch).
  void RemoveLocked(Shard* shard,
                    std::unordered_map<Key, Entry, KeyHash>::iterator it,
                    bool count_evicted);
  // Evicts from the probation tail (then the protected tail) until the
  // shard fits `need` more resident bytes. Caller holds the shard latch.
  void EvictForLocked(Shard* shard, size_t need);
  // Moves the protected tail back to probation while over the hot budget.
  void BalanceProtectedLocked(Shard* shard);

  const size_t capacity_;
  const size_t shard_capacity_;
  const size_t shard_protected_cap_;
  const bool compress_;

  mutable std::array<Shard, kShards> shards_;
  std::array<std::atomic<uint8_t>, kSketchSlots> sketch_{};
  std::atomic<uint64_t> sketch_samples_{0};

  obs::Counter* m_hit_;
  obs::Counter* m_miss_;
  obs::Counter* m_admit_;
  obs::Counter* m_reject_;
  obs::Counter* m_evict_;
  obs::Counter* m_invalidate_;
  obs::Gauge* m_resident_;
  obs::Gauge* m_logical_;
};

// Ambient (thread-local) cache binding. The Database installs one around a
// lob read — (cache, object id, version sequence) — so LobManager's
// leaf-read path and LobReader's read-ahead can consult the cache without
// threading identity through every signature, mirroring ScopedOpContext.
// A null cache leaves the previous binding visible (no-op scope). Parallel
// read plans copy the binding by value into their executor tasks.
class ScopedExtentCacheRef {
 public:
  struct Binding {
    ExtentCache* cache = nullptr;
    uint64_t object_id = 0;
    uint64_t vseq = 0;
  };

  ScopedExtentCacheRef(ExtentCache* cache, uint64_t object_id, uint64_t vseq)
      : ScopedExtentCacheRef(Binding{cache, object_id, vseq}) {}
  explicit ScopedExtentCacheRef(const Binding& b) : prev_(Slot()) {
    if (b.cache != nullptr) {
      owned_ = b;
      Slot() = &owned_;
    }
  }
  ~ScopedExtentCacheRef() { Slot() = prev_; }

  ScopedExtentCacheRef(const ScopedExtentCacheRef&) = delete;
  ScopedExtentCacheRef& operator=(const ScopedExtentCacheRef&) = delete;

  // The innermost binding on this thread, or nullptr.
  static const Binding* Current() { return Slot(); }

 private:
  static const Binding*& Slot() {
    thread_local const Binding* slot = nullptr;
    return slot;
  }

  Binding owned_;
  const Binding* prev_;
};

}  // namespace eos

#endif  // EOS_CACHE_EXTENT_CACHE_H_
